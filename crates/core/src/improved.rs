//! The **improved** negative-mining driver (paper §2.2.2, Figure 3).
//!
//! Two optimizations over [`crate::naive`]:
//!
//! 1. all small 1-itemsets are deleted from the taxonomy before negative
//!    candidates are generated (fewer candidates — the effective fan-out
//!    shrinks), and
//! 2. negative candidates of *all* sizes are generated in one step after
//!    positive mining finishes and counted in a **single** extra pass.
//!
//! Total: `n + 1` database passes, versus the naive driver's `2n`. When the
//! candidate set exceeds the configured memory budget, counting degrades
//! gracefully to one pass per chunk (§2.5).

use crate::candidates::{CandidateGenerator, CandidateSet};
use crate::checkpoint::{CheckpointManager, NegativeCheckpoint, PositiveCheckpoint, Resume};
use crate::config::{GenAlgorithm, MinerConfig};
use crate::counting::confirm_negatives;
use crate::error::Error;
use crate::naive::{renumber, DriverOutcome};
use crate::substitutes::SubstituteKnowledge;
use negassoc_apriori::est_merge::est_merge_with_ctrl;
use negassoc_apriori::generalized::AncestorTable;
use negassoc_apriori::levelwise::{
    CandidateBudgetExceeded, GenLevelMiner, GenStrategy, MinerState,
};
use negassoc_apriori::parallel::{CancelToken, Obs, PassStats};
use negassoc_apriori::partition_mine::{partition_mine_ctrl, partition_mine_shards};
use negassoc_apriori::{Itemset, LargeItemsets};
use negassoc_taxonomy::fxhash::FxHashSet;
use negassoc_taxonomy::{FilteredTaxonomy, ItemId, Taxonomy};
use negassoc_txdb::TransactionSource;
use std::io;
use std::time::Instant;

/// Rough memory estimate per live candidate (boxed itemset + support-table
/// and hash-tree share) used to turn a byte budget into a candidate cap.
/// Deliberately conservative — the guard exists to avoid OOM aborts, not
/// to meter allocations exactly.
const EST_BYTES_PER_CANDIDATE: usize = 160;

/// The candidate cap a [`MinerConfig::memory_budget`] implies.
fn budget_candidate_cap(config: &MinerConfig) -> Option<usize> {
    config
        .memory_budget
        .map(|bytes| (bytes / EST_BYTES_PER_CANDIDATE).max(1))
}

/// The overflow report inside a budget-exceeded positive-phase error, if
/// that is what `e` is.
fn budget_overflow(e: &Error) -> Option<CandidateBudgetExceeded> {
    let Error::Io(io_err) = e else {
        return None;
    };
    if io_err.kind() != io::ErrorKind::OutOfMemory {
        return None;
    }
    io_err
        .get_ref()?
        .downcast_ref::<CandidateBudgetExceeded>()
        .copied()
}

/// Run the improved driver, optionally checkpointing after every completed
/// pass and resuming from the latest trustworthy checkpoint in the
/// manager's directory.
///
/// `ctrl` (when given) is checked at every pass, level, and candidate-chunk
/// boundary; a cancelled run errors out without partial results, leaving
/// whatever checkpoints its completed passes already persisted. Every
/// counting pass reports to `obs`.
pub(crate) fn run_improved_with_checkpoints<S: TransactionSource + ?Sized>(
    source: &S,
    tax: &Taxonomy,
    config: &MinerConfig,
    substitutes: Option<&SubstituteKnowledge>,
    ckpt: Option<&CheckpointManager>,
    ctrl: Option<&CancelToken>,
    obs: &Obs,
) -> Result<DriverOutcome, Error> {
    let resume = match ckpt {
        Some(c) => c.load_latest(),
        None => Resume::Fresh,
    };

    // Phases 1+2: generalized large itemsets, then negative candidates of
    // every size at once — or whatever part of that a checkpoint already
    // paid for.
    let positive_start = Instant::now();
    let (large, mut passes, levels, mut pass_stats, prepared) = match resume {
        Resume::Negative(saved) => {
            let large = large_of(&saved.positive.state);
            // The checkpoint paid for the positive passes; there is no
            // telemetry to report for work this run did not do.
            (
                large,
                saved.positive.passes,
                saved.positive.levels,
                Vec::new(),
                Some((saved.candidates, saved.stats)),
            )
        }
        Resume::Positive(saved) if positive_strategy(config).is_some() => {
            let attempt = resume_positive(source, tax, config, saved, ckpt, ctrl, obs);
            let (l, p, lv, st) = positive_or_degraded(attempt, source, tax, config, ctrl, obs)?;
            (l, p, lv, st, None)
        }
        Resume::Positive(_) | Resume::Fresh => {
            let attempt = mine_positive(source, tax, config, ckpt, ctrl, obs);
            let (l, p, lv, st) = positive_or_degraded(attempt, source, tax, config, ctrl, obs)?;
            (l, p, lv, st, None)
        }
    };
    let positive_time = positive_start.elapsed();

    let negative_start = Instant::now();
    let (cands, candidate_stats) = match prepared {
        Some(ready) => ready,
        None => {
            let (cands, stats) = generate_all_candidates(tax, &large, config, substitutes, ctrl)?;
            if let Some(c) = ckpt {
                c.save_negative(&NegativeCheckpoint {
                    positive: PositiveCheckpoint {
                        state: state_of(&large),
                        passes,
                        levels,
                    },
                    candidates: cands.clone(),
                    stats: stats.clone(),
                })?;
            }
            (cands, stats)
        }
    };

    // Phase 3: a single counting pass (or several under the memory cap).
    let ancestors = AncestorTable::new(tax);
    let (negatives, neg_passes, neg_stats) = confirm_negatives(
        source,
        &ancestors,
        cands,
        config.backend,
        counting_cap(config),
        large.min_support_count(),
        config.min_ri,
        config.parallelism,
        ctrl,
        obs,
    )?;
    passes += neg_passes;
    pass_stats.extend(neg_stats);
    renumber(&mut pass_stats);
    let negative_time = negative_start.elapsed();

    Ok(DriverOutcome {
        large,
        negatives,
        candidate_stats,
        passes,
        levels,
        positive_time,
        negative_time,
        pass_stats,
    })
}

/// The chunk cap for the counting pass: the tighter of the explicit §2.5
/// cap and the one the memory budget implies.
fn counting_cap(config: &MinerConfig) -> Option<usize> {
    match (config.max_candidates_per_pass, budget_candidate_cap(config)) {
        (Some(a), Some(b)) => Some(a.min(b)),
        (a, b) => a.or(b),
    }
}

/// Fail negative-candidate generation when it outgrows the memory budget.
/// Unlike the positive phase there is no partitioned fallback here — the
/// candidate set itself is what does not fit — so this is a terminal,
/// actionable error rather than a degradation trigger.
fn check_candidate_budget(len: usize, size: usize, cap: Option<usize>) -> Result<(), Error> {
    match cap {
        Some(cap) if len > cap => Err(Error::Budget(format!(
            "negative candidate generation reached {len} candidates at itemset size {size}, \
             over the memory budget's cap of {cap}; raise the budget or lower \
             `max_negative_size`"
        ))),
        _ => Ok(()),
    }
}

/// The degradation ladder for the positive phase. A successful (or
/// non-budget-related) result passes through untouched. When the
/// level-wise miner tripped its candidate cap, fall back to the Partition
/// algorithm (two passes, per-partition working sets) if the source is an
/// in-memory database, or to its sharded variant (one shard in memory at
/// a time) if the source exposes shards; otherwise surface a typed
/// [`Error::Budget`] so the caller can decide, instead of letting the
/// process OOM-abort.
fn positive_or_degraded<S: TransactionSource + ?Sized>(
    result: Result<(LargeItemsets, u64, u64, Vec<PassStats>), Error>,
    source: &S,
    tax: &Taxonomy,
    config: &MinerConfig,
    ctrl: Option<&CancelToken>,
    obs: &Obs,
) -> Result<(LargeItemsets, u64, u64, Vec<PassStats>), Error> {
    let err = match result {
        Ok(ok) => return Ok(ok),
        Err(e) => e,
    };
    let Some(overflow) = budget_overflow(&err) else {
        return Err(err);
    };
    let Some(db) = source.as_db() else {
        // A sharded source has no whole in-memory database, but its shards
        // are natural partitions: mine them one at a time under the same
        // local-fraction argument, bounded by the largest shard.
        if let Some(shards) = source.as_shards() {
            let large = partition_mine_shards(
                source,
                shards,
                Some(tax),
                config.min_support,
                config.backend,
                config.parallelism,
                ctrl,
                obs,
            )?;
            let levels = large.max_level() as u64;
            return Ok((large, 2, levels, Vec::new()));
        }
        return Err(Error::Budget(format!(
            "{overflow}; the partitioned fallback needs an in-memory database and this \
             source is streamed — raise the memory budget or lower `max_negative_size`"
        )));
    };
    // Size partitions so each one's working set plausibly fits the budget,
    // assuming ~16 bytes per stored item occurrence.
    let budget = config.memory_budget.unwrap_or(usize::MAX).max(1);
    let est_db_bytes = (db.avg_len() * db.len() as f64 * 16.0) as usize;
    let parts = (est_db_bytes / budget + 2).clamp(2, 64);
    let large = partition_mine_ctrl(
        db,
        Some(tax),
        config.min_support,
        parts,
        config.backend,
        config.parallelism,
        ctrl,
        obs,
    )?;
    let levels = large.max_level() as u64;
    // Partition makes exactly two full passes regardless of depth. Its
    // phase structure (local mining + one verification pass) does not map
    // onto per-level pass telemetry, so it reports none.
    Ok((large, 2, levels, Vec::new()))
}

/// The level-wise strategy of the configured algorithm, `None` for
/// EstMerge (whose deferred counting has no per-level stepping to
/// checkpoint or resume).
fn positive_strategy(config: &MinerConfig) -> Option<GenStrategy> {
    match config.algorithm {
        GenAlgorithm::Basic => Some(GenStrategy::Basic),
        GenAlgorithm::Cumulate => Some(GenStrategy::Cumulate),
        GenAlgorithm::EstMerge(_) => None,
    }
}

/// Reconstruct a [`LargeItemsets`] store from a checkpointed state.
fn large_of(state: &MinerState) -> LargeItemsets {
    let mut large = LargeItemsets::new(state.num_transactions, state.minsup);
    for (set, support) in &state.large {
        large.insert(set.clone(), *support);
    }
    large
}

/// Snapshot a *finished* positive phase as a [`MinerState`] (sorted, so
/// equal results serialize identically).
fn state_of(large: &LargeItemsets) -> MinerState {
    let mut all: Vec<(Itemset, u64)> = large.iter().map(|(s, c)| (s.clone(), c)).collect();
    all.sort_unstable_by(|a, b| a.0.cmp(&b.0));
    MinerState {
        num_transactions: large.num_transactions(),
        minsup: large.min_support_count(),
        large: all,
        frontier: Vec::new(),
        next_k: large.max_level() + 1,
        done: true,
    }
}

/// Step a level miner to completion, checkpointing after every pass.
fn step_to_completion<S: TransactionSource + ?Sized>(
    miner: &mut GenLevelMiner<'_, S>,
    passes: &mut u64,
    levels: &mut u64,
    ckpt: Option<&CheckpointManager>,
) -> Result<(), Error> {
    while let Some(found) = miner.mine_next_level()? {
        *passes += 1;
        if found > 0 {
            *levels += 1;
        }
        if let Some(c) = ckpt {
            c.save_positive(&PositiveCheckpoint {
                state: miner.state(),
                passes: *passes,
                levels: *levels,
            })?;
        }
    }
    Ok(())
}

/// Phase 1 dispatch over the configured positive algorithm. Returns the
/// results plus (passes, levels).
fn mine_positive<S: TransactionSource + ?Sized>(
    source: &S,
    tax: &Taxonomy,
    config: &MinerConfig,
    ckpt: Option<&CheckpointManager>,
    ctrl: Option<&CancelToken>,
    obs: &Obs,
) -> Result<(LargeItemsets, u64, u64, Vec<PassStats>), Error> {
    match positive_strategy(config) {
        Some(strategy) => {
            let mut miner = GenLevelMiner::new_observed(
                source,
                tax,
                config.min_support,
                strategy,
                config.backend,
                config.parallelism,
                ctrl,
                obs.clone(),
            )?
            .with_candidate_cap(budget_candidate_cap(config));
            let mut passes = 1u64;
            let mut levels = 1u64;
            if let Some(c) = ckpt {
                c.save_positive(&PositiveCheckpoint {
                    state: miner.state(),
                    passes,
                    levels,
                })?;
            }
            step_to_completion(&mut miner, &mut passes, &mut levels, ckpt)?;
            let stats = miner.take_pass_stats();
            Ok((miner.large().clone(), passes, levels, stats))
        }
        None => {
            let GenAlgorithm::EstMerge(est_config) = config.algorithm else {
                return Err(Error::Invariant(
                    "positive_strategy returned None for a level-wise algorithm".into(),
                ));
            };
            let (large, stats) = est_merge_with_ctrl(
                source,
                tax,
                config.min_support,
                config.backend,
                est_config,
                config.parallelism,
                ctrl,
                obs,
            )?;
            let levels = large.max_level() as u64;
            // EstMerge batches candidates across levels and interleaves
            // sample scans, so its passes do not decompose into per-level
            // telemetry; only the ledger count is reported.
            Ok((large, stats.passes, levels, Vec::new()))
        }
    }
}

/// Continue positive mining from a checkpoint instead of from scratch.
#[allow(clippy::too_many_arguments)]
fn resume_positive<S: TransactionSource + ?Sized>(
    source: &S,
    tax: &Taxonomy,
    config: &MinerConfig,
    saved: PositiveCheckpoint,
    ckpt: Option<&CheckpointManager>,
    ctrl: Option<&CancelToken>,
    obs: &Obs,
) -> Result<(LargeItemsets, u64, u64, Vec<PassStats>), Error> {
    let Some(strategy) = positive_strategy(config) else {
        return Err(Error::Invariant(
            "resume_positive called for a non-level-wise algorithm".into(),
        ));
    };
    let mut miner = GenLevelMiner::resume(
        source,
        tax,
        strategy,
        config.backend,
        config.parallelism,
        saved.state,
    )
    .with_ctrl(ctrl)
    .with_obs(obs.clone())
    .with_candidate_cap(budget_candidate_cap(config));
    let mut passes = saved.passes;
    let mut levels = saved.levels;
    step_to_completion(&mut miner, &mut passes, &mut levels, ckpt)?;
    let stats = miner.take_pass_stats();
    Ok((miner.large().clone(), passes, levels, stats))
}

/// Phase 2: compress the taxonomy (optionally) and generate candidates from
/// every large level.
fn generate_all_candidates(
    tax: &Taxonomy,
    large: &LargeItemsets,
    config: &MinerConfig,
    substitutes: Option<&SubstituteKnowledge>,
    ctrl: Option<&CancelToken>,
) -> Result<
    (
        Vec<crate::candidates::NegativeCandidate>,
        crate::candidates::CandidateStats,
    ),
    Error,
> {
    let max_size = config
        .max_negative_size
        .unwrap_or(usize::MAX)
        .min(large.max_level());

    let cap = budget_candidate_cap(config);
    let keep: FxHashSet<ItemId>;
    let filtered_storage;
    let mut set = CandidateSet::new();
    if config.compress_taxonomy {
        keep = tax
            .items()
            .filter(|&i| large.support_of(&[i]).is_some())
            .collect();
        filtered_storage = FilteredTaxonomy::new(tax, &keep);
        let mut generator =
            CandidateGenerator::with_compressed(&filtered_storage, large, config.min_ri);
        if let Some(subs) = substitutes {
            generator = generator.with_substitutes(subs);
        }
        for k in 2..=max_size {
            if let Some(c) = ctrl {
                c.check().map_err(Error::Io)?;
            }
            generator.extend_from_level(k, &mut set)?;
            check_candidate_budget(set.len(), k, cap)?;
        }
    } else {
        let mut generator = CandidateGenerator::new(tax, large, config.min_ri);
        if let Some(subs) = substitutes {
            generator = generator.with_substitutes(subs);
        }
        for k in 2..=max_size {
            if let Some(c) = ctrl {
                c.check().map_err(Error::Io)?;
            }
            generator.extend_from_level(k, &mut set)?;
            check_candidate_budget(set.len(), k, cap)?;
        }
    }
    Ok(set.into_candidates())
}

#[cfg(test)]
mod tests {
    use super::*;
    use negassoc_apriori::est_merge::EstMergeConfig;

    /// The driver without checkpointing (what `NegativeMiner::mine` runs).
    fn run_improved<S: TransactionSource + ?Sized>(
        source: &S,
        tax: &Taxonomy,
        config: &MinerConfig,
        substitutes: Option<&SubstituteKnowledge>,
    ) -> Result<DriverOutcome, Error> {
        run_improved_with_checkpoints(
            source,
            tax,
            config,
            substitutes,
            None,
            None,
            &Obs::disabled(),
        )
    }

    use negassoc_apriori::MinSupport;
    use negassoc_taxonomy::TaxonomyBuilder;
    use negassoc_txdb::{PassCounter, TransactionDbBuilder};

    fn scenario() -> (Taxonomy, negassoc_txdb::TransactionDb) {
        let mut tb = TaxonomyBuilder::new();
        let drinks = tb.add_root("drinks");
        let coke = tb.add_child(drinks, "coke").unwrap();
        let pepsi = tb.add_child(drinks, "pepsi").unwrap();
        let snacks = tb.add_root("snacks");
        let chips = tb.add_child(snacks, "chips").unwrap();
        let nuts = tb.add_child(snacks, "nuts").unwrap();
        let tax = tb.build();

        let mut db = TransactionDbBuilder::new();
        for _ in 0..30 {
            db.add([coke, chips]);
        }
        for _ in 0..20 {
            db.add([pepsi, nuts]);
        }
        for _ in 0..10 {
            db.add([pepsi]);
        }
        for _ in 0..10 {
            db.add([nuts]);
        }
        (tax, db.build())
    }

    fn config() -> MinerConfig {
        MinerConfig {
            min_support: MinSupport::Fraction(0.15),
            min_ri: 0.3,
            ..MinerConfig::default()
        }
    }

    #[test]
    fn n_plus_one_passes() {
        let (tax, db) = scenario();
        let pc = PassCounter::new(db);
        let out = run_improved(&pc, &tax, &config(), None).unwrap();
        assert_eq!(out.passes, pc.passes());
        // Positive mining makes `levels + (0 or 1)` passes (the final pass
        // that finds nothing / the no-candidate shortcut); negatives add
        // exactly one more.
        assert!(!out.negatives.is_empty());
        let naive_out = {
            pc.reset();
            crate::naive::run_naive(&pc, &tax, &config(), None, &Obs::disabled()).unwrap()
        };
        // With a single negative level the counts can tie, but improved
        // never loses. (The strict `2n` vs `n + 1` separation is pinned by
        // the deeper scenario in tests/pass_counts.rs.)
        assert!(out.passes <= naive_out.passes);
    }

    #[test]
    fn same_negatives_as_naive() {
        let (tax, db) = scenario();
        let a = run_improved(&db, &tax, &config(), None).unwrap();
        let b = crate::naive::run_naive(&db, &tax, &config(), None, &Obs::disabled()).unwrap();
        let norm = |v: &[crate::candidates::NegativeItemset]| {
            let mut x: Vec<(Vec<ItemId>, u64)> = v
                .iter()
                .map(|n| (n.itemset.items().to_vec(), n.actual))
                .collect();
            x.sort();
            x
        };
        assert_eq!(norm(&a.negatives), norm(&b.negatives));
        // Expected supports agree too.
        let by_set = |v: &[crate::candidates::NegativeItemset]| {
            let mut x: Vec<(Vec<ItemId>, f64)> = v
                .iter()
                .map(|n| (n.itemset.items().to_vec(), n.expected))
                .collect();
            x.sort_by(|p, q| p.0.cmp(&q.0));
            x
        };
        for ((s1, e1), (s2, e2)) in by_set(&a.negatives).iter().zip(by_set(&b.negatives).iter()) {
            assert_eq!(s1, s2);
            assert!((e1 - e2).abs() < 1e-9);
        }
    }

    #[test]
    fn compression_does_not_change_output() {
        let (tax, db) = scenario();
        let with = run_improved(&db, &tax, &config(), None).unwrap();
        let without = run_improved(
            &db,
            &tax,
            &MinerConfig {
                compress_taxonomy: false,
                ..config()
            },
            None,
        )
        .unwrap();
        assert_eq!(with.negatives.len(), without.negatives.len());
    }

    #[test]
    fn est_merge_backend_agrees() {
        let (tax, db) = scenario();
        let base = run_improved(&db, &tax, &config(), None).unwrap();
        let est = run_improved(
            &db,
            &tax,
            &MinerConfig {
                algorithm: GenAlgorithm::EstMerge(EstMergeConfig::default()),
                ..config()
            },
            None,
        )
        .unwrap();
        assert_eq!(base.negatives.len(), est.negatives.len());
        assert_eq!(base.large.total(), est.large.total());
    }

    #[test]
    fn memory_cap_only_adds_passes() {
        let (tax, db) = scenario();
        let pc = PassCounter::new(db);
        let uncapped = run_improved(&pc, &tax, &config(), None).unwrap();
        pc.reset();
        let capped = run_improved(
            &pc,
            &tax,
            &MinerConfig {
                max_candidates_per_pass: Some(1),
                ..config()
            },
            None,
        )
        .unwrap();
        assert!(capped.passes > uncapped.passes);
        assert_eq!(capped.negatives.len(), uncapped.negatives.len());
    }

    #[test]
    fn counting_cap_is_the_tighter_of_explicit_and_budget() {
        let base = config();
        assert_eq!(counting_cap(&base), None);
        let explicit = MinerConfig {
            max_candidates_per_pass: Some(7),
            ..config()
        };
        assert_eq!(counting_cap(&explicit), Some(7));
        let budget = MinerConfig {
            memory_budget: Some(EST_BYTES_PER_CANDIDATE * 3),
            ..config()
        };
        assert_eq!(counting_cap(&budget), Some(3));
        let both = MinerConfig {
            max_candidates_per_pass: Some(2),
            memory_budget: Some(EST_BYTES_PER_CANDIDATE * 3),
            ..config()
        };
        assert_eq!(counting_cap(&both), Some(2));
    }

    #[test]
    fn tiny_budget_degrades_to_partition_with_identical_results() {
        let (tax, db) = scenario();
        let unbudgeted = run_improved(&db, &tax, &config(), None).unwrap();
        // A cap this small cannot hold the level-2 positive candidates, so
        // the level miner trips and the driver must fall back to Partition.
        let budget = MinerConfig {
            memory_budget: Some(EST_BYTES_PER_CANDIDATE * 4),
            ..config()
        };
        let degraded = run_improved(&db, &tax, &budget, None).unwrap();
        let norm = |v: &[crate::candidates::NegativeItemset]| {
            let mut x: Vec<(Vec<ItemId>, u64)> = v
                .iter()
                .map(|n| (n.itemset.items().to_vec(), n.actual))
                .collect();
            x.sort();
            x
        };
        assert_eq!(norm(&degraded.negatives), norm(&unbudgeted.negatives));
        assert_eq!(degraded.large.total(), unbudgeted.large.total());
    }

    #[test]
    fn tiny_budget_on_a_streamed_source_is_a_typed_budget_error() {
        let (tax, db) = scenario();
        // PassCounter deliberately hides the database it wraps, so the
        // partitioned fallback is unavailable and the driver must surface
        // a typed budget error instead.
        let pc = PassCounter::new(db);
        let budget = MinerConfig {
            memory_budget: Some(EST_BYTES_PER_CANDIDATE * 4),
            ..config()
        };
        let err = match run_improved(&pc, &tax, &budget, None) {
            Ok(_) => panic!("a streamed source under a tiny budget should fail"),
            Err(e) => e,
        };
        match err {
            Error::Budget(msg) => {
                assert!(
                    msg.contains("memory budget") || msg.contains("over the cap"),
                    "{msg}"
                );
            }
            other => panic!("expected Error::Budget, got {other:?}"),
        }
    }

    #[test]
    fn empty_database() {
        let tax = TaxonomyBuilder::new().build();
        let db = TransactionDbBuilder::new().build();
        let out = run_improved(&db, &tax, &MinerConfig::default(), None).unwrap();
        assert!(out.negatives.is_empty());
        assert_eq!(out.large.total(), 0);
    }
}
