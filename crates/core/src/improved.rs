//! The **improved** negative-mining driver (paper §2.2.2, Figure 3).
//!
//! Two optimizations over [`crate::naive`]:
//!
//! 1. all small 1-itemsets are deleted from the taxonomy before negative
//!    candidates are generated (fewer candidates — the effective fan-out
//!    shrinks), and
//! 2. negative candidates of *all* sizes are generated in one step after
//!    positive mining finishes and counted in a **single** extra pass.
//!
//! Total: `n + 1` database passes, versus the naive driver's `2n`. When the
//! candidate set exceeds the configured memory budget, counting degrades
//! gracefully to one pass per chunk (§2.5).

use crate::candidates::{CandidateGenerator, CandidateSet};
use crate::config::{GenAlgorithm, MinerConfig};
use crate::counting::confirm_negatives;
use crate::error::Error;
use crate::naive::DriverOutcome;
use crate::substitutes::SubstituteKnowledge;
use negassoc_apriori::est_merge::est_merge;
use negassoc_apriori::generalized::AncestorTable;
use negassoc_apriori::levelwise::{GenLevelMiner, GenStrategy};
use negassoc_apriori::LargeItemsets;
use negassoc_taxonomy::fxhash::FxHashSet;
use negassoc_taxonomy::{FilteredTaxonomy, ItemId, Taxonomy};
use negassoc_txdb::TransactionSource;
use std::time::Instant;

/// Run the improved driver.
pub(crate) fn run_improved<S: TransactionSource + ?Sized>(
    source: &S,
    tax: &Taxonomy,
    config: &MinerConfig,
    substitutes: Option<&SubstituteKnowledge>,
) -> Result<DriverOutcome, Error> {
    // Phase 1: all generalized large itemsets.
    let positive_start = Instant::now();
    let (large, mut passes, levels) = mine_positive(source, tax, config)?;
    let positive_time = positive_start.elapsed();

    // Phase 2: negative candidates of every size at once.
    let negative_start = Instant::now();
    let (cands, candidate_stats) = generate_all_candidates(tax, &large, config, substitutes)?;

    // Phase 3: a single counting pass (or several under the memory cap).
    let ancestors = AncestorTable::new(tax);
    let (negatives, neg_passes) = confirm_negatives(
        source,
        &ancestors,
        cands,
        config.backend,
        config.max_candidates_per_pass,
        large.min_support_count(),
        config.min_ri,
    )?;
    passes += neg_passes;
    let negative_time = negative_start.elapsed();

    Ok(DriverOutcome {
        large,
        negatives,
        candidate_stats,
        passes,
        levels,
        positive_time,
        negative_time,
    })
}

/// Phase 1 dispatch over the configured positive algorithm. Returns the
/// results plus (passes, levels).
fn mine_positive<S: TransactionSource + ?Sized>(
    source: &S,
    tax: &Taxonomy,
    config: &MinerConfig,
) -> Result<(LargeItemsets, u64, u64), Error> {
    match config.algorithm {
        GenAlgorithm::Basic | GenAlgorithm::Cumulate => {
            let strategy = if config.algorithm == GenAlgorithm::Basic {
                GenStrategy::Basic
            } else {
                GenStrategy::Cumulate
            };
            let mut miner =
                GenLevelMiner::new(source, tax, config.min_support, strategy, config.backend)?;
            let mut passes = 1u64;
            let mut levels = 1u64;
            while let Some(found) = miner.mine_next_level()? {
                passes += 1;
                if found > 0 {
                    levels += 1;
                }
            }
            Ok((miner.large().clone(), passes, levels))
        }
        GenAlgorithm::EstMerge(est_config) => {
            let (large, stats) =
                est_merge(source, tax, config.min_support, config.backend, est_config)?;
            let levels = large.max_level() as u64;
            Ok((large, stats.passes, levels))
        }
    }
}

/// Phase 2: compress the taxonomy (optionally) and generate candidates from
/// every large level.
fn generate_all_candidates(
    tax: &Taxonomy,
    large: &LargeItemsets,
    config: &MinerConfig,
    substitutes: Option<&SubstituteKnowledge>,
) -> Result<
    (
        Vec<crate::candidates::NegativeCandidate>,
        crate::candidates::CandidateStats,
    ),
    Error,
> {
    let max_size = config
        .max_negative_size
        .unwrap_or(usize::MAX)
        .min(large.max_level());

    let keep: FxHashSet<ItemId>;
    let filtered_storage;
    let mut set = CandidateSet::new();
    if config.compress_taxonomy {
        keep = tax
            .items()
            .filter(|&i| large.support_of(&[i]).is_some())
            .collect();
        filtered_storage = FilteredTaxonomy::new(tax, &keep);
        let mut generator =
            CandidateGenerator::with_compressed(&filtered_storage, large, config.min_ri);
        if let Some(subs) = substitutes {
            generator = generator.with_substitutes(subs);
        }
        for k in 2..=max_size {
            generator.extend_from_level(k, &mut set)?;
        }
    } else {
        let mut generator = CandidateGenerator::new(tax, large, config.min_ri);
        if let Some(subs) = substitutes {
            generator = generator.with_substitutes(subs);
        }
        for k in 2..=max_size {
            generator.extend_from_level(k, &mut set)?;
        }
    }
    Ok(set.into_candidates())
}

#[cfg(test)]
mod tests {
    use super::*;
    use negassoc_apriori::est_merge::EstMergeConfig;
    use negassoc_apriori::MinSupport;
    use negassoc_taxonomy::TaxonomyBuilder;
    use negassoc_txdb::{PassCounter, TransactionDbBuilder};

    fn scenario() -> (Taxonomy, negassoc_txdb::TransactionDb) {
        let mut tb = TaxonomyBuilder::new();
        let drinks = tb.add_root("drinks");
        let coke = tb.add_child(drinks, "coke").unwrap();
        let pepsi = tb.add_child(drinks, "pepsi").unwrap();
        let snacks = tb.add_root("snacks");
        let chips = tb.add_child(snacks, "chips").unwrap();
        let nuts = tb.add_child(snacks, "nuts").unwrap();
        let tax = tb.build();

        let mut db = TransactionDbBuilder::new();
        for _ in 0..30 {
            db.add([coke, chips]);
        }
        for _ in 0..20 {
            db.add([pepsi, nuts]);
        }
        for _ in 0..10 {
            db.add([pepsi]);
        }
        for _ in 0..10 {
            db.add([nuts]);
        }
        (tax, db.build())
    }

    fn config() -> MinerConfig {
        MinerConfig {
            min_support: MinSupport::Fraction(0.15),
            min_ri: 0.3,
            ..MinerConfig::default()
        }
    }

    #[test]
    fn n_plus_one_passes() {
        let (tax, db) = scenario();
        let pc = PassCounter::new(db);
        let out = run_improved(&pc, &tax, &config(), None).unwrap();
        assert_eq!(out.passes, pc.passes());
        // Positive mining makes `levels + (0 or 1)` passes (the final pass
        // that finds nothing / the no-candidate shortcut); negatives add
        // exactly one more.
        assert!(!out.negatives.is_empty());
        let naive_out = {
            pc.reset();
            crate::naive::run_naive(&pc, &tax, &config()).unwrap()
        };
        // With a single negative level the counts can tie, but improved
        // never loses. (The strict `2n` vs `n + 1` separation is pinned by
        // the deeper scenario in tests/pass_counts.rs.)
        assert!(out.passes <= naive_out.passes);
    }

    #[test]
    fn same_negatives_as_naive() {
        let (tax, db) = scenario();
        let a = run_improved(&db, &tax, &config(), None).unwrap();
        let b = crate::naive::run_naive(&db, &tax, &config()).unwrap();
        let norm = |v: &[crate::candidates::NegativeItemset]| {
            let mut x: Vec<(Vec<ItemId>, u64)> = v
                .iter()
                .map(|n| (n.itemset.items().to_vec(), n.actual))
                .collect();
            x.sort();
            x
        };
        assert_eq!(norm(&a.negatives), norm(&b.negatives));
        // Expected supports agree too.
        let by_set = |v: &[crate::candidates::NegativeItemset]| {
            let mut x: Vec<(Vec<ItemId>, f64)> = v
                .iter()
                .map(|n| (n.itemset.items().to_vec(), n.expected))
                .collect();
            x.sort_by(|p, q| p.0.cmp(&q.0));
            x
        };
        for ((s1, e1), (s2, e2)) in by_set(&a.negatives).iter().zip(by_set(&b.negatives).iter()) {
            assert_eq!(s1, s2);
            assert!((e1 - e2).abs() < 1e-9);
        }
    }

    #[test]
    fn compression_does_not_change_output() {
        let (tax, db) = scenario();
        let with = run_improved(&db, &tax, &config(), None).unwrap();
        let without = run_improved(
            &db,
            &tax,
            &MinerConfig {
                compress_taxonomy: false,
                ..config()
            },
            None,
        )
        .unwrap();
        assert_eq!(with.negatives.len(), without.negatives.len());
    }

    #[test]
    fn est_merge_backend_agrees() {
        let (tax, db) = scenario();
        let base = run_improved(&db, &tax, &config(), None).unwrap();
        let est = run_improved(
            &db,
            &tax,
            &MinerConfig {
                algorithm: GenAlgorithm::EstMerge(EstMergeConfig::default()),
                ..config()
            },
            None,
        )
        .unwrap();
        assert_eq!(base.negatives.len(), est.negatives.len());
        assert_eq!(base.large.total(), est.large.total());
    }

    #[test]
    fn memory_cap_only_adds_passes() {
        let (tax, db) = scenario();
        let pc = PassCounter::new(db);
        let uncapped = run_improved(&pc, &tax, &config(), None).unwrap();
        pc.reset();
        let capped = run_improved(
            &pc,
            &tax,
            &MinerConfig {
                max_candidates_per_pass: Some(1),
                ..config()
            },
            None,
        )
        .unwrap();
        assert!(capped.passes > uncapped.passes);
        assert_eq!(capped.negatives.len(), uncapped.negatives.len());
    }

    #[test]
    fn empty_database() {
        let tax = TaxonomyBuilder::new().build();
        let db = TransactionDbBuilder::new().build();
        let out = run_improved(&db, &tax, &MinerConfig::default(), None).unwrap();
        assert!(out.negatives.is_empty());
        assert_eq!(out.large.total(), 0);
    }
}
