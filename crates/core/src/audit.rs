//! Runtime certification of mining output (feature `audit`, default-on).
//!
//! [`certify`] re-derives, from nothing but a raw database scan and the
//! taxonomy, every number a [`MiningOutcome`] reports:
//!
//! * the support of every generalized large itemset,
//! * the actual support and the negativity test of every negative itemset,
//! * the actual support, antecedent/consequent largeness, and rule
//!   interest of every emitted negative rule.
//!
//! The re-count is **independent of the mining machinery**: no hash trees,
//! no `AncestorTable`, no candidate pruning — just a per-transaction walk
//! up the taxonomy and a set-containment check. An agreement between the
//! two paths therefore certifies the optimized counting stack (hash-tree /
//! subset-map backends, chunked §2.5 passes, taxonomy compression) against
//! the paper's definitions. Any discrepancy is reported as
//! [`NegAssocError::Audit`] with the first offending itemset pinned.
//!
//! Cost: one extra database pass plus `O(|itemsets| · |transaction|)` work
//! per transaction — strictly for validation, so it is feature-gated and
//! opt-in on the CLI (`negrules mine --audit`, `negrules negatives
//! --audit`).

use crate::error::NegAssocError;
use crate::expected::{
    approx_eq, approx_ge, candidate_threshold, is_negative, rule_interest, support_to_f64,
};
use crate::miner::MiningOutcome;
use negassoc_apriori::{Itemset, LargeItemsets};
use negassoc_taxonomy::fxhash::{FxHashMap, FxHashSet};
use negassoc_taxonomy::{ItemId, Taxonomy};
use negassoc_txdb::TransactionSource;

/// What a successful audit checked; returned so callers can report scope.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AuditReport {
    /// Transactions scanned in the re-count pass.
    pub transactions: u64,
    /// Large itemsets whose supports were re-derived and matched.
    pub large_checked: usize,
    /// Negative itemsets re-counted and re-tested.
    pub negatives_checked: usize,
    /// Rules whose supports, largeness constraints and RI were re-derived.
    pub rules_checked: usize,
}

impl std::fmt::Display for AuditReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "audit ok: {} transactions re-scanned; {} large itemsets, \
             {} negative itemsets, {} rules certified",
            self.transactions, self.large_checked, self.negatives_checked, self.rules_checked
        )
    }
}

/// Certify a complete mining outcome against a raw scan of `source`.
///
/// `min_ri` must be the threshold the outcome was mined with (it is
/// re-applied to every negative itemset and rule).
///
/// # Errors
/// [`NegAssocError::Audit`] naming the first discrepancy, or
/// [`NegAssocError::Io`] if the scan itself fails.
pub fn certify<S: TransactionSource + ?Sized>(
    source: &S,
    tax: &Taxonomy,
    outcome: &MiningOutcome,
    min_ri: f64,
) -> Result<AuditReport, NegAssocError> {
    let mut targets = TargetSet::new();
    for (set, _) in outcome.large.iter() {
        targets.add(set);
    }
    for n in &outcome.negatives {
        targets.add(&n.itemset);
    }
    for r in &outcome.rules {
        targets.add(&r.antecedent.union(&r.consequent));
    }
    let transactions = targets.recount(source, tax)?;

    let mut report = AuditReport {
        transactions,
        ..AuditReport::default()
    };
    verify_transaction_total(&outcome.large, transactions)?;
    report.large_checked = verify_large_supports(&outcome.large, &targets)?;
    report.negatives_checked = verify_negatives(outcome, &targets, min_ri)?;
    report.rules_checked = verify_rules(outcome, &targets, min_ri)?;
    Ok(report)
}

/// Certify only the generalized large itemsets in `large` (the positive
/// half of the pipeline; `negrules mine --audit`). Returns the number of
/// itemsets checked and the transactions scanned.
pub fn certify_large<S: TransactionSource + ?Sized>(
    source: &S,
    tax: &Taxonomy,
    large: &LargeItemsets,
) -> Result<AuditReport, NegAssocError> {
    let mut targets = TargetSet::new();
    for (set, _) in large.iter() {
        targets.add(set);
    }
    let transactions = targets.recount(source, tax)?;
    verify_transaction_total(large, transactions)?;
    let large_checked = verify_large_supports(large, &targets)?;
    Ok(AuditReport {
        transactions,
        large_checked,
        ..AuditReport::default()
    })
}

/// The itemsets to re-count, with their independent counters.
struct TargetSet {
    counts: FxHashMap<Itemset, u64>,
}

impl TargetSet {
    fn new() -> Self {
        Self {
            counts: FxHashMap::default(),
        }
    }

    fn add(&mut self, set: &Itemset) {
        self.counts.entry(set.clone()).or_insert(0);
    }

    /// One raw pass; each transaction is expanded to the set of its items
    /// plus all their taxonomy ancestors, and every target contained in
    /// that expansion is credited. Returns the number of transactions.
    fn recount<S: TransactionSource + ?Sized>(
        &mut self,
        source: &S,
        tax: &Taxonomy,
    ) -> Result<u64, NegAssocError> {
        let mut transactions = 0u64;
        let mut expanded: FxHashSet<ItemId> = FxHashSet::default();
        source.pass(&mut |t| {
            transactions += 1;
            expanded.clear();
            for &item in t.items() {
                let mut cur = Some(item);
                while let Some(i) = cur {
                    if !expanded.insert(i) {
                        break; // this chain was already walked
                    }
                    cur = tax.parent(i);
                }
            }
            for (set, count) in self.counts.iter_mut() {
                if set.items().iter().all(|i| expanded.contains(i)) {
                    *count += 1;
                }
            }
        })?;
        Ok(transactions)
    }

    fn support_of(&self, set: &Itemset) -> u64 {
        // Every audited itemset was registered before the pass.
        self.counts.get(set).copied().unwrap_or(0)
    }
}

fn verify_transaction_total(large: &LargeItemsets, transactions: u64) -> Result<(), NegAssocError> {
    if large.num_transactions() != transactions {
        return Err(NegAssocError::Audit(format!(
            "database size mismatch: outcome says {} transactions, re-scan saw {}",
            large.num_transactions(),
            transactions
        )));
    }
    Ok(())
}

fn verify_large_supports(
    large: &LargeItemsets,
    targets: &TargetSet,
) -> Result<usize, NegAssocError> {
    let minsup = large.min_support_count();
    let mut checked = 0usize;
    for (set, claimed) in large.iter() {
        let recounted = targets.support_of(set);
        if recounted != claimed {
            return Err(NegAssocError::Audit(format!(
                "large itemset {set:?}: reported support {claimed}, re-count {recounted}"
            )));
        }
        if claimed < minsup {
            return Err(NegAssocError::Audit(format!(
                "large itemset {set:?}: support {claimed} is below MinSup {minsup}"
            )));
        }
        checked += 1;
    }
    Ok(checked)
}

fn verify_negatives(
    outcome: &MiningOutcome,
    targets: &TargetSet,
    min_ri: f64,
) -> Result<usize, NegAssocError> {
    let minsup = outcome.large.min_support_count();
    let mut checked = 0usize;
    for n in &outcome.negatives {
        let recounted = targets.support_of(&n.itemset);
        if recounted != n.actual {
            return Err(NegAssocError::Audit(format!(
                "negative itemset {:?}: reported actual {}, re-count {recounted}",
                n.itemset, n.actual
            )));
        }
        if !n.expected.is_finite() {
            return Err(NegAssocError::Audit(format!(
                "negative itemset {:?}: non-finite expected support {}",
                n.itemset, n.expected
            )));
        }
        if !is_negative(n.expected, n.actual, minsup, min_ri) {
            return Err(NegAssocError::Audit(format!(
                "negative itemset {:?}: deviation {} does not reach MinSup·MinRI = {}",
                n.itemset,
                n.expected - support_to_f64(n.actual),
                candidate_threshold(minsup, min_ri)
            )));
        }
        checked += 1;
    }
    Ok(checked)
}

fn verify_rules(
    outcome: &MiningOutcome,
    targets: &TargetSet,
    min_ri: f64,
) -> Result<usize, NegAssocError> {
    let mut checked = 0usize;
    for r in &outcome.rules {
        let union = r.antecedent.union(&r.consequent);
        let recounted = targets.support_of(&union);
        if recounted != r.actual {
            return Err(NegAssocError::Audit(format!(
                "rule {r}: reported actual {}, re-count {recounted}",
                r.actual
            )));
        }
        let Some(asup) = outcome.large.support_of_set(&r.antecedent) else {
            return Err(NegAssocError::Audit(format!(
                "rule {r}: antecedent is not a large itemset"
            )));
        };
        if outcome.large.support_of_set(&r.consequent).is_none() {
            return Err(NegAssocError::Audit(format!(
                "rule {r}: consequent is not a large itemset"
            )));
        }
        let ri = rule_interest(r.expected, r.actual, asup)?;
        if !approx_eq(ri, r.ri) {
            return Err(NegAssocError::Audit(format!(
                "rule {r}: reported RI {}, re-derived {ri}",
                r.ri
            )));
        }
        if !approx_ge(ri, min_ri) {
            return Err(NegAssocError::Audit(format!(
                "rule {r}: RI {ri} is below MinRI {min_ri}"
            )));
        }
        checked += 1;
    }
    Ok(checked)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MinerConfig;
    use crate::miner::NegativeMiner;
    use crate::rules::NegativeRule;
    use negassoc_apriori::MinSupport;
    use negassoc_taxonomy::TaxonomyBuilder;
    use negassoc_txdb::{TransactionDb, TransactionDbBuilder};

    fn world() -> (Taxonomy, TransactionDb, MinerConfig) {
        let mut tb = TaxonomyBuilder::new();
        let drinks = tb.add_root("drinks");
        let coke = tb.add_child(drinks, "coke").unwrap();
        let pepsi = tb.add_child(drinks, "pepsi").unwrap();
        let snacks = tb.add_root("snacks");
        let chips = tb.add_child(snacks, "chips").unwrap();
        let nuts = tb.add_child(snacks, "nuts").unwrap();
        let tax = tb.build();

        let mut db = TransactionDbBuilder::new();
        for _ in 0..30 {
            db.add([coke, chips]);
        }
        for _ in 0..20 {
            db.add([pepsi, nuts]);
        }
        for _ in 0..20 {
            db.add([pepsi]);
        }
        let config = MinerConfig {
            min_support: MinSupport::Fraction(0.2),
            min_ri: 0.25,
            ..MinerConfig::default()
        };
        (tax, db.build(), config)
    }

    #[test]
    fn clean_run_is_certified() {
        let (tax, db, config) = world();
        let out = NegativeMiner::new(config).mine(&db, &tax).unwrap();
        assert!(!out.rules.is_empty());
        let report = certify(&db, &tax, &out, config.min_ri).unwrap();
        assert_eq!(report.transactions, 70);
        assert_eq!(report.large_checked, out.large.total());
        assert_eq!(report.negatives_checked, out.negatives.len());
        assert_eq!(report.rules_checked, out.rules.len());
        assert!(report.to_string().contains("audit ok"));

        let positive = certify_large(&db, &tax, &out.large).unwrap();
        assert_eq!(positive.large_checked, out.large.total());
        assert_eq!(positive.rules_checked, 0);
    }

    #[test]
    fn corrupted_rule_support_is_rejected() {
        let (tax, db, config) = world();
        let mut out = NegativeMiner::new(config).mine(&db, &tax).unwrap();
        out.rules[0].actual += 1;
        let err = certify(&db, &tax, &out, config.min_ri).unwrap_err();
        assert!(matches!(err, NegAssocError::Audit(_)), "{err}");
    }

    #[test]
    fn corrupted_rule_interest_is_rejected() {
        let (tax, db, config) = world();
        let mut out = NegativeMiner::new(config).mine(&db, &tax).unwrap();
        out.rules[0].ri *= 2.0;
        let err = certify(&db, &tax, &out, config.min_ri).unwrap_err();
        assert!(err.to_string().contains("RI"), "{err}");
    }

    #[test]
    fn fabricated_rule_is_rejected() {
        let (tax, db, config) = world();
        let mut out = NegativeMiner::new(config).mine(&db, &tax).unwrap();
        let donor = out.rules[0].clone();
        out.rules.push(NegativeRule {
            // A consequent nobody mined: reuse the antecedent, which is
            // disjoint from itself only in fantasy — the re-count of the
            // union will not match the claimed support.
            consequent: donor.antecedent.clone(),
            actual: donor.actual + 7,
            ..donor
        });
        assert!(certify(&db, &tax, &out, config.min_ri).is_err());
    }

    #[test]
    fn corrupted_negative_itemset_is_rejected() {
        let (tax, db, config) = world();
        let mut out = NegativeMiner::new(config).mine(&db, &tax).unwrap();
        assert!(!out.negatives.is_empty());
        out.negatives[0].actual = out.negatives[0].actual.wrapping_add(5);
        let err = certify(&db, &tax, &out, config.min_ri).unwrap_err();
        assert!(err.to_string().contains("re-count"), "{err}");
    }

    #[test]
    fn wrong_database_is_rejected() {
        let (tax, db, config) = world();
        let out = NegativeMiner::new(config).mine(&db, &tax).unwrap();
        // Audit against a database with one extra transaction.
        let mut other = TransactionDbBuilder::new();
        db.iter().for_each(|t| {
            other.add(t.items().iter().copied());
        });
        other.add([tax.items().next().unwrap()]);
        let err = certify(&other.build(), &tax, &out, config.min_ri).unwrap_err();
        assert!(err.to_string().contains("database size"), "{err}");
    }
}
