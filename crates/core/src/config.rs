//! Miner configuration: thresholds, driver selection, and counting
//! backend choices ([`MinerConfig`]).

use crate::error::Error;
use negassoc_apriori::count::CountingBackend;
use negassoc_apriori::est_merge::EstMergeConfig;
use negassoc_apriori::parallel::Parallelism;
use negassoc_apriori::MinSupport;

/// Which generalized large-itemset algorithm feeds the negative miner
/// (paper §2.2: "we can use one of the algorithms, Basic, Cumulate or
/// EstMerge, proposed in [14]").
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum GenAlgorithm {
    /// Extend transactions with all ancestors.
    Basic,
    /// Cumulate's filtering optimizations (default).
    Cumulate,
    /// Sampling-based EstMerge. Only usable with the improved driver — the
    /// naive driver needs strict level-by-level results, which EstMerge's
    /// deferred counting does not provide.
    EstMerge(EstMergeConfig),
}

impl Default for GenAlgorithm {
    fn default() -> Self {
        GenAlgorithm::Cumulate
    }
}

/// Which negative-itemset driver to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Driver {
    /// Paper §2.2.1: interleaves positive and negative phases per level —
    /// `2n` database passes.
    Naive,
    /// Paper §2.2.2 (Fig. 3): all positive levels first, taxonomy
    /// compression, single negative counting pass — `n + 1` passes (more
    /// under the §2.5 memory cap).
    #[default]
    Improved,
}

/// Full configuration of a [`crate::NegativeMiner`].
#[derive(Clone, Copy, Debug)]
pub struct MinerConfig {
    /// Minimum support for large itemsets, rule antecedents and
    /// consequents.
    pub min_support: MinSupport,
    /// Minimum rule interest `MinRI` (see crate docs for the RI measure).
    pub min_ri: f64,
    /// Positive mining algorithm.
    pub algorithm: GenAlgorithm,
    /// Negative-itemset driver.
    pub driver: Driver,
    /// Support-counting backend for all passes.
    pub backend: CountingBackend,
    /// §2.5 memory management: at most this many negative candidates are
    /// counted per pass; `None` counts them all in one pass.
    pub max_candidates_per_pass: Option<usize>,
    /// Improved-driver optimization 1 (delete small 1-items from the
    /// taxonomy before candidate generation). Disabling it changes nothing
    /// about the output — only the work done; exposed for the ablation
    /// benchmark.
    pub compress_taxonomy: bool,
    /// Cap on the size of negative itemsets considered (`None` = up to the
    /// largest large itemset). The number of candidates is exponential in
    /// this size (paper §2.1.2).
    pub max_negative_size: Option<usize>,
    /// Approximate memory budget (bytes) for mining state — candidate
    /// sets and counting structures, not the database itself. When set,
    /// the improved driver degrades gracefully instead of OOM-aborting:
    /// negative counting is chunked to fit (§2.5), an oversized positive
    /// level falls back to the Partition algorithm (in-memory databases
    /// only), and what cannot be degraded returns
    /// [`crate::Error::Budget`]. `None` means unbounded.
    pub memory_budget: Option<usize>,
    /// Worker-pool policy for every support-counting pass (positive
    /// levels, negative confirmation, partitioned fallback). Exact counts
    /// and byte-identical output are guaranteed for every policy, so this
    /// is purely a wall-clock knob. Deliberately **excluded** from the
    /// checkpoint fingerprint: a run interrupted at `--threads 1` may
    /// resume at `--threads 8` (or vice versa) and still produce the same
    /// rules.
    pub parallelism: Parallelism,
}

impl Default for MinerConfig {
    fn default() -> Self {
        Self {
            min_support: MinSupport::Fraction(0.01),
            min_ri: 0.5,
            algorithm: GenAlgorithm::default(),
            driver: Driver::default(),
            backend: CountingBackend::default(),
            max_candidates_per_pass: None,
            compress_taxonomy: true,
            max_negative_size: None,
            memory_budget: None,
            parallelism: Parallelism::Sequential,
        }
    }
}

impl MinerConfig {
    /// Check invariants that the type system cannot express.
    pub fn validate(&self) -> Result<(), Error> {
        if !(self.min_ri > 0.0) {
            return Err(Error::Config(format!(
                "min_ri must be positive, got {}",
                self.min_ri
            )));
        }
        if let MinSupport::Fraction(f) = self.min_support {
            if !(0.0..=1.0).contains(&f) {
                return Err(Error::Config(format!(
                    "min_support fraction must be in [0, 1], got {f}"
                )));
            }
        }
        if let Some(0) = self.max_candidates_per_pass {
            return Err(Error::Config(
                "max_candidates_per_pass must be at least 1".into(),
            ));
        }
        if let (Driver::Naive, GenAlgorithm::EstMerge(_)) = (self.driver, self.algorithm) {
            return Err(Error::Config(
                "EstMerge cannot drive the naive algorithm (no per-level stepping)".into(),
            ));
        }
        if let Some(k) = self.max_negative_size {
            if k < 2 {
                return Err(Error::Config("max_negative_size must be at least 2".into()));
            }
        }
        if let Some(b) = self.memory_budget {
            if b < 1024 {
                return Err(Error::Config(format!(
                    "memory_budget of {b} bytes cannot hold any mining state \
                     (need at least 1024)"
                )));
            }
        }
        if self.parallelism == Parallelism::Threads(0) {
            return Err(Error::Config(
                "parallelism of 0 threads cannot make progress; use 1 or more \
                 (or `auto`)"
                    .into(),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        MinerConfig::default().validate().unwrap();
    }

    #[test]
    fn rejects_bad_knobs() {
        let mut c = MinerConfig {
            min_ri: 0.0,
            ..MinerConfig::default()
        };
        assert!(c.validate().is_err());
        c.min_ri = -1.0;
        assert!(c.validate().is_err());
        c.min_ri = 0.5;

        c.min_support = MinSupport::Fraction(1.5);
        assert!(c.validate().is_err());
        c.min_support = MinSupport::Count(10);

        c.max_candidates_per_pass = Some(0);
        assert!(c.validate().is_err());
        c.max_candidates_per_pass = Some(1);

        c.max_negative_size = Some(1);
        assert!(c.validate().is_err());
        c.max_negative_size = Some(2);

        c.memory_budget = Some(64);
        assert!(c.validate().is_err());
        c.memory_budget = Some(64 * 1024 * 1024);
        c.validate().unwrap();

        c.parallelism = Parallelism::Threads(0);
        assert!(c.validate().is_err());
        c.parallelism = Parallelism::Threads(4);
        c.validate().unwrap();
        c.parallelism = Parallelism::Auto;
        c.validate().unwrap();
    }

    #[test]
    fn est_merge_with_naive_driver_is_rejected() {
        let c = MinerConfig {
            driver: Driver::Naive,
            algorithm: GenAlgorithm::EstMerge(EstMergeConfig::default()),
            ..MinerConfig::default()
        };
        assert!(c.validate().is_err());
    }
}
