//! Snapshot export assembly: turn a [`MiningOutcome`] into the
//! deterministic, taxonomy-pinned rule bundle the serving layer
//! (`negassoc-serve`) persists as an immutable snapshot.
//!
//! Export happens here — next to the miner — so the bundle can capture
//! provenance the raw rule lists do not carry: the digest of the taxonomy
//! the ids were minted under, the database size, and the thresholds. The
//! digest is what lets every later consumer (snapshot writer, loader,
//! server hot-swap) refuse a rule set replayed against a different
//! hierarchy instead of silently mis-expanding categories.

use crate::miner::MiningOutcome;
use crate::rules::NegativeRule;
use negassoc_apriori::rules::{generate_rules, Rule};
use negassoc_taxonomy::Taxonomy;

/// A deterministic, self-describing bundle of mined rules ready for
/// snapshot serialization. Rule order is canonical (sorted by antecedent,
/// then consequent), so two exports of the same mine are byte-identical
/// downstream.
#[derive(Clone, Debug)]
pub struct RuleSetExport {
    /// Digest of the taxonomy the rules' item ids refer to
    /// ([`Taxonomy::digest`]).
    pub taxonomy_digest: u64,
    /// Transactions in the mined database.
    pub num_transactions: u64,
    /// Absolute minimum support count used by the mine.
    pub min_support_count: u64,
    /// The MinRI threshold the negative rules cleared.
    pub min_ri: f64,
    /// The minimum confidence the positive rules cleared.
    pub min_confidence: f64,
    /// Positive rules, canonically ordered.
    pub positive: Vec<Rule>,
    /// Negative rules, canonically ordered.
    pub negative: Vec<NegativeRule>,
}

impl MiningOutcome {
    /// Assemble the export bundle: positive rules generated from the
    /// large itemsets at `min_confidence`, the run's negative rules, and
    /// the provenance header pinning both to `tax`.
    ///
    /// `min_ri` is recorded as provenance only — the negative rules were
    /// already filtered by it during mining.
    ///
    /// # Panics
    /// Panics if `min_confidence` is outside `[0, 1]` (same contract as
    /// [`generate_rules`]); validate user input before calling.
    pub fn rule_export(&self, tax: &Taxonomy, min_confidence: f64, min_ri: f64) -> RuleSetExport {
        let mut positive = generate_rules(&self.large, min_confidence);
        positive.sort_by(|a, b| {
            a.antecedent
                .cmp(&b.antecedent)
                .then_with(|| a.consequent.cmp(&b.consequent))
        });
        let mut negative = self.rules.clone();
        negative.sort_by(|a, b| {
            a.antecedent
                .cmp(&b.antecedent)
                .then_with(|| a.consequent.cmp(&b.consequent))
        });
        RuleSetExport {
            taxonomy_digest: tax.digest(),
            num_transactions: self.large.num_transactions(),
            min_support_count: self.large.min_support_count(),
            min_ri,
            min_confidence,
            positive,
            negative,
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::{MinerConfig, NegativeMiner};
    use negassoc_apriori::MinSupport;
    use negassoc_taxonomy::TaxonomyBuilder;
    use negassoc_txdb::TransactionDbBuilder;

    #[test]
    fn export_is_canonical_and_pins_the_taxonomy() {
        let mut tb = TaxonomyBuilder::new();
        let drinks = tb.add_root("soft drinks");
        let coke = tb.add_child(drinks, "Coke").unwrap();
        let pepsi = tb.add_child(drinks, "Pepsi").unwrap();
        let snacks = tb.add_root("snacks");
        let ruffles = tb.add_child(snacks, "Ruffles").unwrap();
        let tax = tb.build();

        let mut db = TransactionDbBuilder::new();
        for i in 0..100u32 {
            if i % 2 == 0 {
                db.add([coke, ruffles]);
            } else if i % 3 == 0 {
                db.add([pepsi]);
            } else {
                db.add([coke]);
            }
        }
        let db = db.build();

        let config = MinerConfig {
            min_support: MinSupport::Fraction(0.2),
            min_ri: 0.3,
            ..MinerConfig::default()
        };
        let outcome = NegativeMiner::new(config).mine(&db, &tax).expect("mine");
        let export = outcome.rule_export(&tax, 0.6, 0.3);

        assert_eq!(export.taxonomy_digest, tax.digest());
        assert_eq!(export.num_transactions, 100);
        assert_eq!(export.min_confidence, 0.6);
        assert_eq!(export.min_ri, 0.3);
        assert!(
            !export.positive.is_empty(),
            "coke+ruffles co-occurrence should yield positive rules"
        );
        // Canonical order: sorted by antecedent then consequent.
        for w in export.positive.windows(2) {
            assert!(
                (&w[0].antecedent, &w[0].consequent) <= (&w[1].antecedent, &w[1].consequent),
                "positive rules out of canonical order"
            );
        }
        for w in export.negative.windows(2) {
            assert!(
                (&w[0].antecedent, &w[0].consequent) <= (&w[1].antecedent, &w[1].consequent),
                "negative rules out of canonical order"
            );
        }
        // Two exports of the same outcome agree exactly.
        let again = outcome.rule_export(&tax, 0.6, 0.3);
        assert_eq!(export.positive, again.positive);
        assert_eq!(again.negative.len(), export.negative.len());
    }
}
