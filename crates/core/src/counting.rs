//! Counting the *actual* supports of negative candidates, with the paper's
//! §2.5 memory management: when the candidate set exceeds the configured
//! budget, it is counted in chunks, one database pass per chunk.

use crate::candidates::{Derivation, NegativeCandidate, NegativeItemset};
use crate::error::Error;
use crate::expected::is_negative;
use negassoc_apriori::count::CountingBackend;
use negassoc_apriori::generalized::{extend_filtered, items_of_candidates, AncestorTable};
use negassoc_apriori::parallel::{
    count_mixed_parallel_ctrl, CancelToken, Obs, Parallelism, PassStats,
};
use negassoc_apriori::Itemset;
use negassoc_taxonomy::fxhash::FxHashMap;
use negassoc_taxonomy::ItemId;
use negassoc_txdb::obs::{metric, Event};
use negassoc_txdb::TransactionSource;
use std::time::Instant;

/// Count all `candidates` (mixed sizes, categories allowed) and keep the
/// negative ones. Returns the negative itemsets, the number of database
/// passes made (`ceil(len / cap)`, or 1 without a cap), and one
/// [`PassStats`] entry per pass (telemetry; pass numbers are local to this
/// call and renumbered by the driver).
///
/// `ctrl` is checked before every chunk pass (and at block boundaries
/// within it); a cancelled run returns the token's error without any
/// partial negatives. Each chunk pass reports to `obs` under the
/// `"negative"` label.
#[allow(clippy::too_many_arguments)]
pub(crate) fn confirm_negatives<S: TransactionSource + ?Sized>(
    source: &S,
    ancestors: &AncestorTable,
    candidates: Vec<NegativeCandidate>,
    backend: CountingBackend,
    cap: Option<usize>,
    min_support_count: u64,
    min_ri: f64,
    parallelism: Parallelism,
    ctrl: Option<&CancelToken>,
    obs: &Obs,
) -> Result<(Vec<NegativeItemset>, u64, Vec<PassStats>), Error> {
    if candidates.is_empty() {
        return Ok((Vec::new(), 0, Vec::new()));
    }
    let total_candidates = candidates.len();
    obs.emit(|| Event::CandidateSet {
        label: "negative".to_string(),
        size: total_candidates,
    });
    let chunk_size = cap.unwrap_or(candidates.len()).max(1);
    let mut negatives = Vec::new();
    let mut passes = 0u64;
    let mut stats = Vec::new();
    let mut remaining = candidates;
    while !remaining.is_empty() {
        if let Some(c) = ctrl {
            c.check().map_err(Error::Io)?;
        }
        let tail = remaining.split_off(chunk_size.min(remaining.len()));
        let chunk = std::mem::replace(&mut remaining, tail);
        passes += 1;
        let started = Instant::now();
        let chunk_len = chunk.len();
        obs.emit(|| Event::PassStart {
            label: "negative".to_string(),
            candidates: chunk_len,
        });
        let run = count_chunk(
            source,
            ancestors,
            chunk,
            backend,
            min_support_count,
            min_ri,
            parallelism,
            ctrl,
            obs,
            &mut negatives,
        )?;
        let pass_stats = PassStats {
            pass: passes,
            label: "negative".to_string(),
            candidates: chunk_len,
            transactions: run.0,
            threads: run.1,
            wall: started.elapsed(),
        };
        obs.emit(|| Event::PassEnd {
            stats: pass_stats.clone(),
        });
        obs.bump(metric::PASSES_COMPLETED, 1);
        stats.push(pass_stats);
    }
    Ok((negatives, passes, stats))
}

/// Count one chunk; returns `(transactions scanned, threads used)`.
#[allow(clippy::too_many_arguments)]
// negassoc-lint: allow(L010) -- the scan polls inside count_mixed_parallel_ctrl; the local loops are in-memory candidate bookkeeping before and after it
fn count_chunk<S: TransactionSource + ?Sized>(
    source: &S,
    ancestors: &AncestorTable,
    chunk: Vec<NegativeCandidate>,
    backend: CountingBackend,
    min_support_count: u64,
    min_ri: f64,
    parallelism: Parallelism,
    ctrl: Option<&CancelToken>,
    obs: &Obs,
    negatives: &mut Vec<NegativeItemset>,
) -> Result<(u64, usize), Error> {
    let mut expected: FxHashMap<Itemset, (f64, Derivation)> = FxHashMap::default();
    let mut itemsets: Vec<Itemset> = Vec::with_capacity(chunk.len());
    for c in chunk {
        itemsets.push(c.itemset.clone());
        expected.insert(c.itemset, (c.expected, c.derivation));
    }
    // Candidates may contain categories; transactions must be extended with
    // exactly the ancestors the candidates can use (the Cumulate filter).
    let needed = items_of_candidates(&itemsets);
    let mapper =
        |items: &[ItemId], out: &mut Vec<ItemId>| extend_filtered(items, ancestors, &needed, out);
    let run = count_mixed_parallel_ctrl(source, itemsets, backend, &mapper, parallelism, ctrl, obs)
        .map_err(Error::Io)?;
    for (set, actual) in run.counts {
        // Every counted set was registered above; a miss means the counting
        // backend fabricated an itemset, and skipping it is the only output
        // that cannot lie.
        let Some(&(e, _)) = expected.get(&set).as_deref() else {
            continue;
        };
        if is_negative(e, actual, min_support_count, min_ri) {
            let Some((e, derivation)) = expected.remove(&set) else {
                continue;
            };
            negatives.push(NegativeItemset {
                itemset: set,
                expected: e,
                actual,
                derivation: Some(derivation),
            });
        }
    }
    Ok((run.transactions, run.threads))
}

#[cfg(test)]
mod tests {
    use super::*;
    use negassoc_taxonomy::TaxonomyBuilder;
    use negassoc_txdb::{PassCounter, TransactionDbBuilder};

    /// cat -> {a, b}; db where {a} and {b} never co-occur.
    #[test]
    fn confirms_negatives_and_counts_passes() {
        let mut tb = TaxonomyBuilder::new();
        let cat = tb.add_root("cat");
        let a = tb.add_child(cat, "a").unwrap();
        let b = tb.add_child(cat, "b").unwrap();
        let other = tb.add_root("other");
        let tax = tb.build();
        let ancestors = AncestorTable::new(&tax);

        let mut db = TransactionDbBuilder::new();
        for _ in 0..10 {
            db.add([a, other]);
        }
        for _ in 0..10 {
            db.add([b]);
        }
        let pc = PassCounter::new(db.build());

        let derivation = |seed: Vec<negassoc_taxonomy::ItemId>| crate::candidates::Derivation {
            seed: Itemset::from_unsorted(seed),
            seed_support: 10,
            case: crate::candidates::DerivationCase::Siblings,
        };
        let candidates = vec![
            NegativeCandidate {
                itemset: Itemset::from_unsorted(vec![a, b]),
                expected: 8.0,
                derivation: derivation(vec![a, other]),
            },
            NegativeCandidate {
                itemset: Itemset::from_unsorted(vec![b, other]),
                expected: 5.0,
                derivation: derivation(vec![a, other]),
            },
            // Category candidate: {cat, other} actually co-occurs often.
            NegativeCandidate {
                itemset: Itemset::from_unsorted(vec![cat, other]),
                expected: 10.0,
                derivation: derivation(vec![cat, other]),
            },
        ];

        // minsup 5, min_ri 0.5 -> negativity threshold 2.5.
        let (negs, passes, stats) = confirm_negatives(
            &pc,
            &ancestors,
            candidates.clone(),
            CountingBackend::HashTree,
            None,
            5,
            0.5,
            Parallelism::Sequential,
            None,
            &Obs::disabled(),
        )
        .unwrap();
        assert_eq!(stats.len(), 1);
        assert_eq!(stats[0].candidates, 3);
        assert_eq!(stats[0].transactions, 20);
        assert_eq!(stats[0].threads, 1);
        assert_eq!(passes, 1);
        assert_eq!(pc.passes(), 1);
        // {a,b}: actual 0, deviation 8 >= 2.5 -> negative.
        // {b,other}: actual 0, deviation 5 -> negative.
        // {cat,other}: actual 10, deviation 0 -> not negative.
        let mut got: Vec<(Vec<negassoc_taxonomy::ItemId>, u64)> = negs
            .iter()
            .map(|n| (n.itemset.items().to_vec(), n.actual))
            .collect();
        got.sort();
        assert_eq!(got.len(), 2);
        assert!(got.iter().all(|(_, actual)| *actual == 0));

        // With a cap of 1 candidate per pass: 3 passes, same negatives.
        pc.reset();
        let (negs2, passes2, stats2) = confirm_negatives(
            &pc,
            &ancestors,
            candidates,
            CountingBackend::SubsetHashMap,
            Some(1),
            5,
            0.5,
            Parallelism::Threads(2),
            None,
            &Obs::disabled(),
        )
        .unwrap();
        assert_eq!(passes2, 3);
        assert_eq!(stats2.len(), 3);
        assert!(stats2.iter().all(|s| s.threads == 2 && s.candidates == 1));
        assert_eq!(pc.passes(), 3);
        assert_eq!(negs2.len(), 2);
    }

    #[test]
    fn empty_candidates_make_no_pass() {
        let tax = TaxonomyBuilder::new().build();
        let ancestors = AncestorTable::new(&tax);
        let db = TransactionDbBuilder::new().build();
        let pc = PassCounter::new(db);
        let (negs, passes, stats) = confirm_negatives(
            &pc,
            &ancestors,
            Vec::new(),
            CountingBackend::HashTree,
            None,
            1,
            0.5,
            Parallelism::Sequential,
            None,
            &Obs::disabled(),
        )
        .unwrap();
        assert!(stats.is_empty());
        assert!(negs.is_empty());
        assert_eq!(passes, 0);
        assert_eq!(pc.passes(), 0);
    }
}
