//! Observability: structured trace events, metrics, and pluggable sinks.
//!
//! This is a re-export of [`negassoc_txdb::obs`], the dependency-free base
//! layer the whole workspace shares (the worker pool at the bottom of the
//! stack emits events too, so the types must live below this crate). See
//! that module — and DESIGN.md §11 — for the event schema, the sink
//! contract, and the overhead budget.
//!
//! Attach an observer to a run through
//! [`RunControl::with_observer`](crate::ctrl::RunControl::with_observer):
//!
//! ```
//! use negassoc::ctrl::RunControl;
//! use negassoc::obs::{Obs, RingBufferSink};
//! use std::sync::Arc;
//!
//! let ring = Arc::new(RingBufferSink::new(1024));
//! let obs = Obs::disabled().with_sink(ring.clone());
//! let ctrl = RunControl::new().with_observer(obs);
//! // ... NegativeMiner::mine_with_controls(..., &ctrl) ...
//! ```

pub use negassoc_txdb::obs::*;
