//! Explicit substitute-item knowledge — the paper's §4.1 future-work
//! extension.
//!
//! The taxonomy is one source of "these items are substitutes" knowledge;
//! the paper notes that other sources (e.g. merchandising rules, explicit
//! substitute lists) could induce additional negative rules. This module
//! lets users declare substitute *groups*: items in the same group are
//! treated as extra siblings during Case 3 candidate generation, with the
//! same `sup(new)/sup(replaced)` expectation scaling — the uniformity
//! assumption applies to any grouping of substitutable items, not only
//! taxonomy-derived ones.

use negassoc_taxonomy::fxhash::FxHashMap;
use negassoc_taxonomy::ItemId;

/// A collection of substitute groups.
///
/// ```
/// use negassoc::substitutes::SubstituteKnowledge;
/// use negassoc_taxonomy::ItemId;
///
/// let mut subs = SubstituteKnowledge::new();
/// subs.add_group([ItemId(1), ItemId(2), ItemId(3)]);
/// assert!(subs.are_substitutes(ItemId(1), ItemId(3)));
/// assert_eq!(subs.substitutes_of(ItemId(2)).count(), 2);
/// ```
#[derive(Clone, Debug, Default)]
pub struct SubstituteKnowledge {
    /// group id per item.
    group_of: FxHashMap<ItemId, u32>,
    /// members per group.
    groups: Vec<Vec<ItemId>>,
}

impl SubstituteKnowledge {
    /// No substitute knowledge.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declare that `items` are mutual substitutes. An item may belong to
    /// at most one group; adding an item twice merges nothing and instead
    /// returns `false` (the group is not created). Groups with fewer than
    /// two items are ignored (also `false`).
    pub fn add_group<I: IntoIterator<Item = ItemId>>(&mut self, items: I) -> bool {
        let mut members: Vec<ItemId> = items.into_iter().collect();
        members.sort_unstable();
        members.dedup();
        if members.len() < 2 {
            return false;
        }
        if members.iter().any(|i| self.group_of.contains_key(i)) {
            return false;
        }
        let gid = self.groups.len() as u32;
        for &m in &members {
            self.group_of.insert(m, gid);
        }
        self.groups.push(members);
        true
    }

    /// Number of groups.
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// `true` when no groups are declared.
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }

    /// The declared substitutes of `item` (excluding `item` itself); empty
    /// when the item is in no group.
    pub fn substitutes_of(&self, item: ItemId) -> impl Iterator<Item = ItemId> + '_ {
        let members: &[ItemId] = match self.group_of.get(&item) {
            Some(&g) => &self.groups[g as usize],
            None => &[],
        };
        members.iter().copied().filter(move |&m| m != item)
    }

    /// `true` when `a` and `b` are declared substitutes.
    pub fn are_substitutes(&self, a: ItemId, b: ItemId) -> bool {
        a != b
            && match (self.group_of.get(&a), self.group_of.get(&b)) {
                (Some(x), Some(y)) => x == y,
                _ => false,
            }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_and_queries() {
        let mut s = SubstituteKnowledge::new();
        assert!(s.is_empty());
        assert!(s.add_group([ItemId(1), ItemId(2), ItemId(3)]));
        assert!(s.add_group([ItemId(7), ItemId(8)]));
        assert_eq!(s.len(), 2);

        let subs: Vec<ItemId> = s.substitutes_of(ItemId(2)).collect();
        assert_eq!(subs, vec![ItemId(1), ItemId(3)]);
        assert!(s.are_substitutes(ItemId(1), ItemId(3)));
        assert!(!s.are_substitutes(ItemId(1), ItemId(7)));
        assert!(!s.are_substitutes(ItemId(1), ItemId(1)));
        assert_eq!(s.substitutes_of(ItemId(42)).count(), 0);
    }

    #[test]
    fn rejects_degenerate_or_overlapping_groups() {
        let mut s = SubstituteKnowledge::new();
        assert!(!s.add_group([ItemId(1)]));
        assert!(!s.add_group([ItemId(1), ItemId(1)]));
        assert!(s.add_group([ItemId(1), ItemId(2)]));
        // Overlap with an existing group is rejected wholesale.
        assert!(!s.add_group([ItemId(2), ItemId(3)]));
        assert_eq!(s.len(), 1);
        assert_eq!(s.substitutes_of(ItemId(3)).count(), 0);
    }
}
