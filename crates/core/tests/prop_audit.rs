//! Property tests for `negassoc::audit`: across generated taxonomies and
//! databases, [`negassoc::audit::certify`] passes on genuine miner output
//! and fails on deliberately corrupted output.
//!
//! This is the strongest end-to-end check in the suite: the audit
//! re-derives every reported support with machinery (a naive parent-walk
//! scan) that shares nothing with the hash-tree counting stack, so a pass
//! certifies the whole pipeline against the paper's definitions.

#![cfg(feature = "audit")]

use negassoc::audit::certify;
use negassoc::config::Driver;
use negassoc::{MinerConfig, NegAssocError, NegativeMiner};
use negassoc_apriori::MinSupport;
use negassoc_taxonomy::{ItemId, Taxonomy, TaxonomyBuilder};
use negassoc_txdb::{TransactionDb, TransactionDbBuilder};
use proptest::prelude::*;

/// A two-level taxonomy with `cats` categories of 2–4 leaves, and a random
/// database over the leaves (mirrors `tests/prop_invariants.rs`).
fn arb_world() -> impl Strategy<Value = (Taxonomy, TransactionDb)> {
    (2usize..5).prop_flat_map(|cats| {
        let leaf_counts = prop::collection::vec(2usize..5, cats);
        let txs = prop::collection::vec(prop::collection::vec(0usize..16, 1..6), 5..60);
        (leaf_counts, txs).prop_map(|(leaf_counts, txs)| {
            let mut b = TaxonomyBuilder::new();
            let mut leaves: Vec<ItemId> = Vec::new();
            for (ci, &n) in leaf_counts.iter().enumerate() {
                let cat = b.add_root(&format!("cat{ci}"));
                for li in 0..n {
                    leaves.push(b.add_child(cat, &format!("leaf{ci}-{li}")).unwrap());
                }
            }
            let tax = b.build();
            let mut db = TransactionDbBuilder::new();
            for t in txs {
                db.add(t.into_iter().map(|i| leaves[i % leaves.len()]));
            }
            (tax, db.build())
        })
    })
}

fn config(driver: Driver) -> MinerConfig {
    MinerConfig {
        min_support: MinSupport::Fraction(0.15),
        min_ri: 0.3,
        driver,
        ..MinerConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Both drivers' outputs certify against a raw re-scan.
    #[test]
    fn miner_output_certifies((tax, db) in arb_world()) {
        for driver in [Driver::Improved, Driver::Naive] {
            let cfg = config(driver);
            let out = NegativeMiner::new(cfg).mine(&db, &tax).unwrap();
            let report = certify(&db, &tax, &out, cfg.min_ri).unwrap();
            prop_assert_eq!(report.transactions, db.len() as u64);
            prop_assert_eq!(report.large_checked, out.large.total());
            prop_assert_eq!(report.negatives_checked, out.negatives.len());
            prop_assert_eq!(report.rules_checked, out.rules.len());
        }
    }

    /// Any single corrupted rule field makes certification fail.
    #[test]
    fn corrupted_rules_are_rejected((tax, db) in arb_world(), which in 0usize..3) {
        let cfg = config(Driver::Improved);
        let out = NegativeMiner::new(cfg).mine(&db, &tax).unwrap();
        prop_assume!(!out.rules.is_empty());

        let mut bad = NegativeMiner::new(cfg).mine(&db, &tax).unwrap();
        match which {
            // Inflate the claimed actual support.
            0 => bad.rules[0].actual += 1 + db.len() as u64,
            // Flip the RI to something unearned.
            1 => bad.rules[0].ri += 1.0,
            // Claim a wildly wrong expectation (breaks the RI re-check).
            _ => bad.rules[0].expected *= 10.0,
        }
        let err = certify(&db, &tax, &bad, cfg.min_ri).unwrap_err();
        prop_assert!(matches!(err, NegAssocError::Audit(_)));
    }

    /// Corrupting a negative itemset's count or a large itemset's support
    /// is caught too.
    #[test]
    fn corrupted_itemsets_are_rejected((tax, db) in arb_world()) {
        let cfg = config(Driver::Improved);
        let out = NegativeMiner::new(cfg).mine(&db, &tax).unwrap();
        prop_assume!(!out.negatives.is_empty());

        let mut bad = NegativeMiner::new(cfg).mine(&db, &tax).unwrap();
        bad.negatives[0].actual = bad.negatives[0].actual.wrapping_add(3);
        prop_assert!(matches!(
            certify(&db, &tax, &bad, cfg.min_ri),
            Err(NegAssocError::Audit(_))
        ));

        // Swap in a large store counted against a different database.
        let mut shrunk = TransactionDbBuilder::new();
        let mut kept = 0usize;
        db.iter().for_each(|t| {
            if kept > 0 {
                shrunk.add(t.items().iter().copied());
            }
            kept += 1;
        });
        let shrunk = shrunk.build();
        let mut bad = NegativeMiner::new(cfg).mine(&db, &tax).unwrap();
        bad.large = NegativeMiner::new(cfg).mine(&shrunk, &tax).unwrap().large;
        prop_assert!(certify(&db, &tax, &bad, cfg.min_ri).is_err());
    }
}
