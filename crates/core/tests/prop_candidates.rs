//! Property test: the optimized candidate generator agrees with a direct
//! transliteration of the paper's §2.1.1 definition.
//!
//! The reference implementation below enumerates Cases 1–3 exactly as the
//! paper words them (one case at a time, no shared machinery with the
//! production code) and applies the admission checks in definition order.
//! Agreement on random inputs pins both the candidate sets and the
//! max-expectation deduplication.

use negassoc::candidates::{CandidateGenerator, CandidateSet};
use negassoc::expected::candidate_threshold;
use negassoc_apriori::{Itemset, LargeItemsets};
use negassoc_taxonomy::fxhash::FxHashMap;
use negassoc_taxonomy::{ItemId, Taxonomy, TaxonomyBuilder};
use proptest::prelude::*;

/// Reference: all candidates derivable from `seed` per the paper's cases,
/// with their expected supports (max over derivations).
fn reference_candidates(
    tax: &Taxonomy,
    large: &LargeItemsets,
    min_ri: f64,
) -> FxHashMap<Itemset, f64> {
    let threshold = candidate_threshold(large.min_support_count(), min_ri);
    let mut out: FxHashMap<Itemset, f64> = FxHashMap::default();
    let is_large_item = |i: ItemId| large.support_of(&[i]).is_some();
    let sup1 = |i: ItemId| large.support_of(&[i]).unwrap() as f64;

    let mut seeds: Vec<(Itemset, u64)> = Vec::new();
    for k in 2..=large.max_level() {
        for (set, sup) in large.level(k) {
            seeds.push((set.clone(), sup));
        }
    }

    for (seed, seed_sup) in seeds {
        let items = seed.items();
        let k = items.len();
        // Enumerate every assignment: per position either keep the member,
        // replace with one of its (large) children, or replace with one of
        // its (large) siblings — but never mix children and siblings in one
        // candidate, never replace nothing, and never replace everything
        // with siblings.
        #[derive(Clone, Copy, PartialEq)]
        enum Mode {
            Children,
            Siblings,
        }
        for mode in [Mode::Children, Mode::Siblings] {
            for mask in 1u32..(1 << k) {
                if mode == Mode::Siblings && mask == (1 << k) - 1 {
                    continue; // all-sibling candidates are excluded
                }
                // Option lists per masked position.
                let mut option_lists: Vec<Vec<ItemId>> = Vec::new();
                let mut feasible = true;
                for (pos, &member) in items.iter().enumerate() {
                    if mask & (1 << pos) == 0 {
                        continue;
                    }
                    let opts: Vec<ItemId> = match mode {
                        Mode::Children => tax
                            .children(member)
                            .iter()
                            .copied()
                            .filter(|&c| is_large_item(c))
                            .collect(),
                        Mode::Siblings => {
                            tax.siblings(member).filter(|&s| is_large_item(s)).collect()
                        }
                    };
                    if opts.is_empty() {
                        feasible = false;
                        break;
                    }
                    option_lists.push(opts);
                }
                if !feasible {
                    continue;
                }
                // Cartesian product, recursively.
                let positions: Vec<usize> = (0..k).filter(|p| mask & (1 << p) != 0).collect();
                let mut choice = vec![0usize; positions.len()];
                loop {
                    let mut cand_items = items.to_vec();
                    let mut expected = seed_sup as f64;
                    for (slot, &pos) in positions.iter().enumerate() {
                        let repl = option_lists[slot][choice[slot]];
                        expected *= sup1(repl) / sup1(items[pos]);
                        cand_items[pos] = repl;
                    }
                    let candidate = Itemset::from_unsorted(cand_items);
                    let distinct = candidate.len() == k;
                    let related = candidate.items().iter().enumerate().any(|(i, &a)| {
                        candidate.items()[i + 1..]
                            .iter()
                            .any(|&b| tax.related(a, b))
                    });
                    if distinct && !related && expected >= threshold && !large.contains(&candidate)
                    {
                        let e = out.entry(candidate).or_insert(f64::MIN);
                        if expected > *e {
                            *e = expected;
                        }
                    }
                    // Next combination.
                    let mut slot = positions.len();
                    let done = loop {
                        if slot == 0 {
                            break true;
                        }
                        slot -= 1;
                        choice[slot] += 1;
                        if choice[slot] < option_lists[slot].len() {
                            break false;
                        }
                        choice[slot] = 0;
                    };
                    if done {
                        break;
                    }
                }
            }
        }
    }
    out
}

/// Random world: a 2–3 level taxonomy plus random large itemsets with
/// consistent supports (subset supports >= superset supports).
fn arb_world() -> impl Strategy<Value = (Taxonomy, LargeItemsets)> {
    (
        prop::collection::vec(2usize..4, 2..4), // children per root category
        any::<u64>(),
    )
        .prop_map(|(shape, seed)| {
            let mut b = TaxonomyBuilder::new();
            let mut leaves = Vec::new();
            for (ci, &n) in shape.iter().enumerate() {
                let cat = b.add_root(&format!("c{ci}"));
                for li in 0..n {
                    leaves.push(b.add_child(cat, &format!("l{ci}-{li}")).unwrap());
                }
            }
            let tax = b.build();

            // Deterministic pseudo-random supports from the seed.
            let mut state = seed | 1;
            let mut next = || {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                (state >> 33) as u64
            };
            let mut large = LargeItemsets::new(100_000, 100);
            // Singles: a random large subset of all items (categories get
            // higher supports than leaves for plausibility).
            let mut large_items: Vec<ItemId> = Vec::new();
            for id in tax.items() {
                if next() % 4 != 0 {
                    let base = if tax.is_leaf(id) { 200 } else { 2_000 };
                    large.insert(Itemset::singleton(id), base + next() % 1_000);
                    large_items.push(id);
                }
            }
            // Pairs: random unrelated large pairs.
            for (i, &a) in large_items.iter().enumerate() {
                for &b in &large_items[i + 1..] {
                    if tax.related(a, b) || next() % 3 != 0 {
                        continue;
                    }
                    large.insert(Itemset::from_unsorted(vec![a, b]), 120 + next() % 300);
                }
            }
            (tax, large)
        })
}

/// Deterministic guard against vacuity: a world where candidates certainly
/// exist, checked through the same reference.
#[test]
fn reference_agrees_on_a_rich_world() {
    let mut b = TaxonomyBuilder::new();
    let c0 = b.add_root("c0");
    let a = b.add_child(c0, "a").unwrap();
    let a2 = b.add_child(c0, "a2").unwrap();
    let c1 = b.add_root("c1");
    let x = b.add_child(c1, "x").unwrap();
    let y = b.add_child(c1, "y").unwrap();
    let tax = b.build();

    let mut large = LargeItemsets::new(100_000, 100);
    for (i, s) in [
        (c0, 3000u64),
        (a, 1500),
        (a2, 1200),
        (c1, 2800),
        (x, 1400),
        (y, 1100),
    ] {
        large.insert(Itemset::singleton(i), s);
    }
    large.insert(Itemset::from_unsorted(vec![c0, c1]), 900);
    large.insert(Itemset::from_unsorted(vec![a, x]), 500);

    let reference = reference_candidates(&tax, &large, 0.5);
    assert!(
        reference.len() >= 5,
        "expected a rich candidate set, got {:?}",
        reference.keys().collect::<Vec<_>>()
    );

    let generator = CandidateGenerator::new(&tax, &large, 0.5);
    let mut set = CandidateSet::new();
    for k in 2..=large.max_level() {
        generator.extend_from_level(k, &mut set).unwrap();
    }
    let (got, _) = set.into_candidates();
    assert_eq!(got.len(), reference.len());
    for c in &got {
        let want = reference[&c.itemset];
        assert!((c.expected - want).abs() < 1e-9, "{:?}", c.itemset);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn generator_matches_papers_definition((tax, large) in arb_world()) {
        let min_ri = 0.5;
        let reference = reference_candidates(&tax, &large, min_ri);

        let generator = CandidateGenerator::new(&tax, &large, min_ri);
        let mut set = CandidateSet::new();
        for k in 2..=large.max_level() {
            generator.extend_from_level(k, &mut set).unwrap();
        }
        let (got, _) = set.into_candidates();

        prop_assert_eq!(got.len(), reference.len(),
            "candidate sets differ in size: got {:?}, want {:?}",
            got.iter().map(|c| c.itemset.clone()).collect::<Vec<_>>(),
            reference.keys().collect::<Vec<_>>());
        for c in &got {
            let want = reference.get(&c.itemset);
            prop_assert!(want.is_some(), "unexpected candidate {:?}", c.itemset);
            prop_assert!((c.expected - want.unwrap()).abs() < 1e-9,
                "expectation mismatch for {:?}: got {}, want {}",
                c.itemset, c.expected, want.unwrap());
        }
    }
}
