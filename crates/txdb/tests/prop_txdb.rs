//! Property-based tests for the transaction database substrate.

use negassoc_taxonomy::ItemId;
use negassoc_txdb::TransactionSource;
use negassoc_txdb::{
    binfmt, fault, partition, textfmt, vertical, TransactionDb, TransactionDbBuilder,
};
use proptest::prelude::*;

fn arb_db() -> impl Strategy<Value = TransactionDb> {
    prop::collection::vec(prop::collection::vec(0u32..200, 0..12), 0..40).prop_map(|txs| {
        let mut b = TransactionDbBuilder::new();
        for t in txs {
            b.add(t.into_iter().map(ItemId));
        }
        b.build()
    })
}

fn db_eq(a: &TransactionDb, b: &TransactionDb) -> bool {
    a.len() == b.len()
        && a.iter()
            .zip(b.iter())
            .all(|(x, y)| x.tid() == y.tid() && x.items() == y.items())
}

proptest! {
    #[test]
    fn binary_format_round_trips(db in arb_db()) {
        let mut buf = Vec::new();
        binfmt::write_db(&db, &mut buf).unwrap();
        // Decode through the file loader path by going via a temp file.
        let dir = std::env::temp_dir();
        let path = dir.join(format!("prop-{}-{}.nadb", std::process::id(), db.len()));
        std::fs::write(&path, &buf).unwrap();
        let back = binfmt::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        prop_assert!(db_eq(&db, &back));
    }

    #[test]
    fn text_format_round_trips(db in arb_db()) {
        let mut buf = Vec::new();
        textfmt::write_db(&db, &mut buf).unwrap();
        let back = textfmt::read_db(buf.as_slice()).unwrap();
        // Text format re-assigns sequential TIDs, which matches the builder
        // defaults used by arb_db.
        prop_assert!(db_eq(&db, &back));
    }

    /// TID-list supports agree with brute-force counting.
    #[test]
    fn vertical_support_matches_bruteforce(
        db in arb_db(),
        query in prop::collection::btree_set(0u32..200, 1..4),
    ) {
        let idx = vertical::TidListIndex::build(&db).unwrap();
        let itemset: Vec<ItemId> = query.into_iter().map(ItemId).collect();
        let brute = db
            .iter()
            .filter(|t| t.contains_all(&itemset))
            .count() as u64;
        prop_assert_eq!(idx.support(&itemset), brute);
    }

    /// Partitions are a disjoint cover in order.
    #[test]
    fn partitions_cover(db in arb_db(), n in 1usize..8) {
        let parts = partition::partitions(&db, n);
        let mut tids = Vec::new();
        for p in &parts {
            p.pass(&mut |t| tids.push(t.tid())).unwrap();
        }
        let expected: Vec<u64> = db.iter().map(|t| t.tid()).collect();
        prop_assert_eq!(tids, expected);
    }

    /// Transactions always satisfy the sorted/dedup invariant after building.
    #[test]
    fn builder_normalizes(raw in prop::collection::vec(0u32..50, 0..20)) {
        let mut b = TransactionDbBuilder::new();
        b.add(raw.iter().copied().map(ItemId));
        let db = b.build();
        let t = db.get(0);
        prop_assert!(t.items().windows(2).all(|w| w[0] < w[1]));
        for &r in &raw {
            prop_assert!(t.contains(ItemId(r)));
        }
    }

    /// Decode fuzz: `binfmt::load` on arbitrary bytes errors, never panics
    /// (and never fabricates data when the magic happens to match).
    #[test]
    fn load_survives_random_bytes(bytes in prop::collection::vec(0u8..=255, 0..400)) {
        let path = unique_tmp("fuzz-raw");
        std::fs::write(&path, &bytes).unwrap();
        let _ = binfmt::load(&path); // Ok or Err both fine; a panic fails the test.
        let _ = binfmt::load_salvage(&path);
        std::fs::remove_file(&path).ok();
    }

    /// Decode fuzz with a valid prefix: random bytes appended to or
    /// overwriting a real v2 file must never panic the loader, and strict
    /// mode must not silently accept a payload-corrupted file.
    #[test]
    fn load_survives_corrupted_valid_files(
        db in arb_db(),
        noise in prop::collection::vec(0u8..=255, 1..64),
        at in 0usize..1000,
    ) {
        let mut buf = Vec::new();
        binfmt::write_db(&db, &mut buf).unwrap();
        let at = at % buf.len().max(1);
        for (k, &b) in noise.iter().enumerate() {
            if let Some(slot) = buf.get_mut(at + k) {
                *slot ^= b;
            }
        }
        let path = unique_tmp("fuzz-corrupt");
        std::fs::write(&path, &buf).unwrap();
        match binfmt::load(&path) {
            // Strict load may only succeed when the noise XORed nothing.
            Ok(back) => prop_assert!(noise.iter().all(|&b| b == 0) && db_eq(&db, &back)),
            Err(_) => {}
        }
        let _ = binfmt::load_salvage(&path);
        std::fs::remove_file(&path).ok();
    }

    /// Any single payload-corrupted block: strict errors, salvage recovers
    /// exactly the other blocks and accounts every transaction.
    #[test]
    fn single_block_corruption_strict_vs_salvage(
        n in 600u64..1500,
        block in 0u64..3,
        flip in 1u8..=255,
    ) {
        let mut b = TransactionDbBuilder::new();
        for i in 0..n {
            b.add([ItemId(i as u32 % 40)]);
        }
        let db = b.build();
        let mut buf = Vec::new();
        binfmt::write_db(&db, &mut buf).unwrap();
        // Walk the block framing to find `block`'s first payload byte.
        let blocks = (n as usize).div_ceil(512) as u64;
        let block = block % blocks;
        let mut off = 13usize;
        for _ in 0..block {
            let payload_len = u32::from_le_bytes([buf[off], buf[off+1], buf[off+2], buf[off+3]]) as usize;
            off += 32 + payload_len;
        }
        buf[off + 32] ^= flip;
        let path = unique_tmp("fuzz-block");
        std::fs::write(&path, &buf).unwrap();

        prop_assert!(binfmt::load(&path).is_err(), "strict mode must fail closed");
        let (recovered, report) = binfmt::load_salvage(&path).unwrap();
        prop_assert_eq!(report.lost_blocks.len(), 1);
        prop_assert_eq!(recovered.len() as u64 + report.lost_transactions(), n);
        // The lost-TID report is exact for this sequential-TID database.
        let lost = &report.lost_blocks[0];
        prop_assert_eq!(u64::from(lost.tx_count), lost.last_tid - lost.first_tid + 1);
        for t in recovered.iter() {
            prop_assert!(t.tid() < lost.first_tid || t.tid() > lost.last_tid);
        }
        std::fs::remove_file(&path).ok();
    }

    /// Mining-style consumption under a seeded transient fault plan with
    /// retry sees exactly the fault-free transaction stream, pass after
    /// pass.
    #[test]
    fn retried_passes_match_fault_free(db in arb_db(), seed in 0u64..1u64<<48, n_faults in 0usize..4) {
        let plan = fault::FaultPlan::seeded_transient(seed, 4, db.len().max(1) as u64, n_faults);
        let faulty = fault::RetryingSource::new(
            fault::FaultySource::new(&db, plan),
            fault::RetryPolicy::new(n_faults as u32, std::time::Duration::ZERO),
        );
        for _pass in 0..4 {
            let mut clean = Vec::new();
            db.pass(&mut |t| clean.push((t.tid(), t.items().to_vec()))).unwrap();
            let mut seen = Vec::new();
            faulty.pass(&mut |t| seen.push((t.tid(), t.items().to_vec()))).unwrap();
            prop_assert_eq!(&seen, &clean);
        }
    }
}

/// A collision-free temp path (unique per process, test and call).
fn unique_tmp(name: &str) -> std::path::PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let n = SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("negassoc-prop-{}-{n}-{name}", std::process::id()))
}
