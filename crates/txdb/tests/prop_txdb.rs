//! Property-based tests for the transaction database substrate.

use negassoc_taxonomy::ItemId;
use negassoc_txdb::TransactionSource;
use negassoc_txdb::{binfmt, partition, textfmt, vertical, TransactionDb, TransactionDbBuilder};
use proptest::prelude::*;

fn arb_db() -> impl Strategy<Value = TransactionDb> {
    prop::collection::vec(prop::collection::vec(0u32..200, 0..12), 0..40).prop_map(|txs| {
        let mut b = TransactionDbBuilder::new();
        for t in txs {
            b.add(t.into_iter().map(ItemId));
        }
        b.build()
    })
}

fn db_eq(a: &TransactionDb, b: &TransactionDb) -> bool {
    a.len() == b.len()
        && a.iter()
            .zip(b.iter())
            .all(|(x, y)| x.tid() == y.tid() && x.items() == y.items())
}

proptest! {
    #[test]
    fn binary_format_round_trips(db in arb_db()) {
        let mut buf = Vec::new();
        binfmt::write_db(&db, &mut buf).unwrap();
        // Decode through the file loader path by going via a temp file.
        let dir = std::env::temp_dir();
        let path = dir.join(format!("prop-{}-{}.nadb", std::process::id(), db.len()));
        std::fs::write(&path, &buf).unwrap();
        let back = binfmt::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        prop_assert!(db_eq(&db, &back));
    }

    #[test]
    fn text_format_round_trips(db in arb_db()) {
        let mut buf = Vec::new();
        textfmt::write_db(&db, &mut buf).unwrap();
        let back = textfmt::read_db(buf.as_slice()).unwrap();
        // Text format re-assigns sequential TIDs, which matches the builder
        // defaults used by arb_db.
        prop_assert!(db_eq(&db, &back));
    }

    /// TID-list supports agree with brute-force counting.
    #[test]
    fn vertical_support_matches_bruteforce(
        db in arb_db(),
        query in prop::collection::btree_set(0u32..200, 1..4),
    ) {
        let idx = vertical::TidListIndex::build(&db).unwrap();
        let itemset: Vec<ItemId> = query.into_iter().map(ItemId).collect();
        let brute = db
            .iter()
            .filter(|t| t.contains_all(&itemset))
            .count() as u64;
        prop_assert_eq!(idx.support(&itemset), brute);
    }

    /// Partitions are a disjoint cover in order.
    #[test]
    fn partitions_cover(db in arb_db(), n in 1usize..8) {
        let parts = partition::partitions(&db, n);
        let mut tids = Vec::new();
        for p in &parts {
            p.pass(&mut |t| tids.push(t.tid())).unwrap();
        }
        let expected: Vec<u64> = db.iter().map(|t| t.tid()).collect();
        prop_assert_eq!(tids, expected);
    }

    /// Transactions always satisfy the sorted/dedup invariant after building.
    #[test]
    fn builder_normalizes(raw in prop::collection::vec(0u32..50, 0..20)) {
        let mut b = TransactionDbBuilder::new();
        b.add(raw.iter().copied().map(ItemId));
        let db = b.build();
        let t = db.get(0);
        prop_assert!(t.items().windows(2).all(|w| w[0] < w[1]));
        for &r in &raw {
            prop_assert!(t.contains(ItemId(r)));
        }
    }
}
