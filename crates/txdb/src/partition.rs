//! Horizontal partitioning of an in-memory database.
//!
//! A partition is a contiguous range of transactions that itself implements
//! [`TransactionSource`], so it can be fed to any counting routine. This is
//! the building block for parallel support counting (one thread per
//! partition) and mirrors the partitioned processing of Savasere et al.'s
//! earlier Partition algorithm (VLDB '95).

use crate::scan::TransactionSource;
use crate::transaction::Transaction;
use crate::TransactionDb;
use std::io;

/// A contiguous slice of a [`TransactionDb`].
#[derive(Clone, Copy, Debug)]
pub struct DbSlice<'a> {
    db: &'a TransactionDb,
    start: usize,
    end: usize,
}

impl<'a> DbSlice<'a> {
    /// Slice `db` to positions `start..end`.
    ///
    /// # Panics
    /// Panics when the range is out of bounds or reversed.
    pub fn new(db: &'a TransactionDb, start: usize, end: usize) -> Self {
        assert!(start <= end && end <= db.len(), "slice out of bounds");
        Self { db, start, end }
    }

    /// Number of transactions in the slice.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// `true` when the slice is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Iterate the slice's transactions.
    pub fn iter(&self) -> impl Iterator<Item = Transaction<'a>> + '_ {
        let db = self.db;
        (self.start..self.end).map(move |i| db.get(i))
    }
}

impl TransactionSource for DbSlice<'_> {
    fn pass(&self, f: &mut dyn FnMut(Transaction<'_>)) -> io::Result<()> {
        for t in self.iter() {
            f(t);
        }
        Ok(())
    }

    fn len_hint(&self) -> Option<u64> {
        Some(self.len() as u64)
    }
}

/// Split `db` into `n` contiguous partitions of near-equal size (the first
/// `len % n` partitions hold one extra transaction). `n` is clamped to at
/// least 1; fewer than `n` partitions are returned when `db` has fewer
/// transactions.
pub fn partitions(db: &TransactionDb, n: usize) -> Vec<DbSlice<'_>> {
    let n = n.max(1);
    let len = db.len();
    let chunks = n.min(len.max(1));
    let base = len / chunks;
    let extra = len % chunks;
    let mut out = Vec::with_capacity(chunks);
    let mut start = 0;
    for i in 0..chunks {
        let size = base + usize::from(i < extra);
        if size == 0 && len > 0 {
            continue;
        }
        out.push(DbSlice::new(db, start, start + size));
        start += size;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TransactionDbBuilder;
    use negassoc_taxonomy::ItemId;

    fn db(n: usize) -> TransactionDb {
        let mut b = TransactionDbBuilder::new();
        for i in 0..n {
            b.add([ItemId(i as u32)]);
        }
        b.build()
    }

    #[test]
    fn partitions_cover_everything_in_order() {
        let d = db(10);
        let parts = partitions(&d, 3);
        assert_eq!(parts.len(), 3);
        assert_eq!(
            parts.iter().map(|p| p.len()).collect::<Vec<_>>(),
            vec![4, 3, 3]
        );
        let mut seen = Vec::new();
        for p in &parts {
            p.pass(&mut |t| seen.push(t.tid())).unwrap();
        }
        assert_eq!(seen, (0..10).collect::<Vec<u64>>());
    }

    #[test]
    fn more_partitions_than_transactions() {
        let d = db(2);
        let parts = partitions(&d, 5);
        assert_eq!(parts.len(), 2);
        assert!(parts.iter().all(|p| p.len() == 1));
    }

    #[test]
    fn zero_partitions_is_clamped() {
        let d = db(4);
        let parts = partitions(&d, 0);
        assert_eq!(parts.len(), 1);
        assert_eq!(parts[0].len(), 4);
        assert_eq!(parts[0].len_hint(), Some(4));
    }

    #[test]
    fn empty_db_yields_one_empty_partition() {
        let d = db(0);
        let parts = partitions(&d, 3);
        assert_eq!(parts.len(), 1);
        assert!(parts[0].is_empty());
    }

    #[test]
    #[should_panic(expected = "slice out of bounds")]
    fn out_of_bounds_slice_panics() {
        let d = db(2);
        let _ = DbSlice::new(&d, 1, 3);
    }
}
