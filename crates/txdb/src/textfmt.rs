//! Human-readable text format: one basket per line, whitespace-separated
//! item ids, `#` comments. TIDs are the (0-based) data-line index. This is
//! the common interchange format of itemset-mining tools (e.g. the FIMI
//! repository datasets) and what the `negrules` CLI accepts.

use crate::{TransactionDb, TransactionDbBuilder, TransactionSource};
use negassoc_taxonomy::ItemId;
use std::fmt;
use std::io::{self, BufRead, BufWriter, Write};

/// Errors from parsing the text transaction format.
#[derive(Debug)]
pub enum ParseError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A token was not a valid `u32` item id.
    BadItem {
        /// 1-based line number of the bad token.
        line: usize,
        /// The token that failed to parse as an item id.
        token: String,
    },
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Io(e) => write!(f, "i/o error: {e}"),
            ParseError::BadItem { line, token } => {
                write!(f, "line {line}: {token:?} is not a valid item id")
            }
        }
    }
}

impl std::error::Error for ParseError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ParseError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ParseError {
    fn from(e: io::Error) -> Self {
        ParseError::Io(e)
    }
}

/// Parse a text-format database. Empty lines are empty transactions;
/// `#` lines are comments.
pub fn read_db<R: BufRead>(reader: R) -> Result<TransactionDb, ParseError> {
    let mut b = TransactionDbBuilder::new();
    let mut basket: Vec<ItemId> = Vec::new();
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.starts_with('#') {
            continue;
        }
        basket.clear();
        for token in trimmed.split_whitespace() {
            let id: u32 = token.parse().map_err(|_| ParseError::BadItem {
                line: idx + 1,
                token: token.to_owned(),
            })?;
            basket.push(ItemId(id));
        }
        b.add(basket.iter().copied());
    }
    Ok(b.build())
}

/// Write `source` in the text format.
pub fn write_db<S: TransactionSource, W: Write>(source: &S, writer: W) -> io::Result<()> {
    let mut w = BufWriter::new(writer);
    let mut result = Ok(());
    source.pass(&mut |t| {
        if result.is_err() {
            return;
        }
        result = (|| {
            let mut first = true;
            for &it in t.items() {
                if !first {
                    w.write_all(b" ")?;
                }
                first = false;
                write!(w, "{}", it.0)?;
            }
            w.write_all(b"\n")
        })();
    })?;
    result?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_baskets_comments_and_empties() {
        let text = "# header\n1 5 3\n\n7\n";
        let db = read_db(text.as_bytes()).unwrap();
        assert_eq!(db.len(), 3);
        assert_eq!(db.get(0).items(), &[ItemId(1), ItemId(3), ItemId(5)]);
        assert!(db.get(1).is_empty());
        assert_eq!(db.get(2).items(), &[ItemId(7)]);
    }

    #[test]
    fn rejects_non_numeric_tokens_with_line_number() {
        let text = "1 2\n3 x\n";
        match read_db(text.as_bytes()) {
            Err(ParseError::BadItem { line, token }) => {
                assert_eq!(line, 2);
                assert_eq!(token, "x");
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn round_trip() {
        let text = "1 2 3\n\n9 11\n";
        let db = read_db(text.as_bytes()).unwrap();
        let mut out = Vec::new();
        write_db(&db, &mut out).unwrap();
        assert_eq!(String::from_utf8(out).unwrap(), "1 2 3\n\n9 11\n");
    }
}
