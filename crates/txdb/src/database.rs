use crate::scan::TransactionSource;
use crate::transaction::{normalize, Transaction};
use negassoc_taxonomy::ItemId;
use std::io;

/// A compact in-memory transaction database.
///
/// Items of all transactions live in one flat array with an offsets table
/// (CSR layout), so a full pass is a cache-friendly linear sweep with no
/// per-transaction allocation.
#[derive(Clone, Debug, Default)]
pub struct TransactionDb {
    tids: Vec<u64>,
    offsets: Vec<usize>, // offsets.len() == tids.len() + 1
    items: Vec<ItemId>,
    max_item: Option<ItemId>,
}

impl TransactionDb {
    /// Number of transactions.
    #[inline]
    pub fn len(&self) -> usize {
        self.tids.len()
    }

    /// `true` when the database holds no transactions.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.tids.is_empty()
    }

    /// Total number of item occurrences across all transactions.
    #[inline]
    pub fn total_items(&self) -> usize {
        self.items.len()
    }

    /// The largest item id appearing in any transaction, if any.
    #[inline]
    pub fn max_item(&self) -> Option<ItemId> {
        self.max_item
    }

    /// The `idx`-th transaction (by position, not by TID).
    ///
    /// # Panics
    /// Panics if `idx >= self.len()`.
    #[inline]
    pub fn get(&self, idx: usize) -> Transaction<'_> {
        let (s, e) = (self.offsets[idx], self.offsets[idx + 1]);
        Transaction::new(self.tids[idx], &self.items[s..e])
    }

    /// Iterate over all transactions in storage order.
    pub fn iter(&self) -> impl Iterator<Item = Transaction<'_>> + '_ {
        (0..self.len()).map(move |i| self.get(i))
    }

    /// Average basket size.
    pub fn avg_len(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.items.len() as f64 / self.len() as f64
        }
    }
}

impl TransactionSource for TransactionDb {
    fn pass(&self, f: &mut dyn FnMut(Transaction<'_>)) -> io::Result<()> {
        for t in self.iter() {
            f(t);
        }
        Ok(())
    }

    fn len_hint(&self) -> Option<u64> {
        Some(self.len() as u64)
    }

    fn as_db(&self) -> Option<&TransactionDb> {
        Some(self)
    }
}

/// Builder for [`TransactionDb`]. Baskets are sorted and deduplicated on
/// insertion; TIDs default to the insertion index but can be set explicitly.
#[derive(Default, Debug)]
pub struct TransactionDbBuilder {
    db: TransactionDb,
    scratch: Vec<ItemId>,
}

impl TransactionDbBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        let mut b = Self::default();
        b.db.offsets.push(0);
        b
    }

    /// A builder pre-sized for `transactions` baskets of ~`avg_len` items.
    pub fn with_capacity(transactions: usize, avg_len: usize) -> Self {
        let mut b = Self::new();
        b.db.tids.reserve(transactions);
        b.db.offsets.reserve(transactions);
        b.db.items.reserve(transactions * avg_len);
        b
    }

    /// Append a basket with an automatically assigned TID (the insertion
    /// index). Returns the TID.
    pub fn add<I: IntoIterator<Item = ItemId>>(&mut self, items: I) -> u64 {
        let tid = self.db.tids.len() as u64;
        self.add_with_tid(tid, items);
        tid
    }

    /// Append a basket with an explicit TID.
    pub fn add_with_tid<I: IntoIterator<Item = ItemId>>(&mut self, tid: u64, items: I) {
        self.scratch.clear();
        self.scratch.extend(items);
        normalize(&mut self.scratch);
        if let Some(&m) = self.scratch.last() {
            self.db.max_item = Some(self.db.max_item.map_or(m, |cur| cur.max(m)));
        }
        self.db.tids.push(tid);
        self.db.items.extend_from_slice(&self.scratch);
        self.db.offsets.push(self.db.items.len());
    }

    /// Number of transactions added so far.
    pub fn len(&self) -> usize {
        self.db.len()
    }

    /// `true` when nothing has been added.
    pub fn is_empty(&self) -> bool {
        self.db.is_empty()
    }

    /// Finish building.
    pub fn build(self) -> TransactionDb {
        self.db
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(v: &[u32]) -> Vec<ItemId> {
        v.iter().map(|&i| ItemId(i)).collect()
    }

    #[test]
    fn builder_assigns_sequential_tids_and_normalizes() {
        let mut b = TransactionDbBuilder::new();
        assert!(b.is_empty());
        let t0 = b.add(ids(&[3, 1, 3]));
        let t1 = b.add(ids(&[2]));
        assert_eq!((t0, t1), (0, 1));
        assert_eq!(b.len(), 2);
        let db = b.build();
        assert_eq!(db.get(0).items(), &ids(&[1, 3])[..]);
        assert_eq!(db.get(1).tid(), 1);
        assert_eq!(db.max_item(), Some(ItemId(3)));
        assert_eq!(db.total_items(), 3);
        assert!((db.avg_len() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn explicit_tids() {
        let mut b = TransactionDbBuilder::new();
        b.add_with_tid(100, ids(&[1]));
        b.add_with_tid(7, ids(&[2]));
        let db = b.build();
        assert_eq!(db.get(0).tid(), 100);
        assert_eq!(db.get(1).tid(), 7);
    }

    #[test]
    fn empty_db() {
        let db = TransactionDbBuilder::new().build();
        assert!(db.is_empty());
        assert_eq!(db.avg_len(), 0.0);
        assert_eq!(db.max_item(), None);
        assert_eq!(db.iter().count(), 0);
    }

    #[test]
    fn pass_visits_everything() {
        let mut b = TransactionDbBuilder::with_capacity(3, 2);
        b.add(ids(&[1, 2]));
        b.add(ids(&[3]));
        b.add([]);
        let db = b.build();
        let mut seen = Vec::new();
        db.pass(&mut |t| seen.push((t.tid(), t.len()))).unwrap();
        assert_eq!(seen, vec![(0, 2), (1, 1), (2, 0)]);
        assert_eq!(db.len_hint(), Some(3));
    }
}
