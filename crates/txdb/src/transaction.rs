use negassoc_taxonomy::ItemId;

/// A borrowed view of one customer transaction: a unique TID plus the
/// basket's items, **sorted ascending and duplicate-free** (an invariant
/// maintained by every constructor in this crate).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Transaction<'a> {
    tid: u64,
    items: &'a [ItemId],
}

impl<'a> Transaction<'a> {
    /// Wrap a TID and a sorted, deduplicated item slice.
    ///
    /// # Panics
    /// Debug-asserts the sortedness invariant.
    #[inline]
    pub fn new(tid: u64, items: &'a [ItemId]) -> Self {
        debug_assert!(
            items.windows(2).all(|w| w[0] < w[1]),
            "transaction items must be strictly ascending"
        );
        Self { tid, items }
    }

    /// The transaction identifier.
    #[inline]
    pub fn tid(&self) -> u64 {
        self.tid
    }

    /// The basket, sorted ascending.
    #[inline]
    pub fn items(&self) -> &'a [ItemId] {
        self.items
    }

    /// Number of items in the basket.
    #[inline]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` for an empty basket.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Binary-search membership test.
    #[inline]
    pub fn contains(&self, item: ItemId) -> bool {
        self.items.binary_search(&item).is_ok()
    }

    /// `true` when every item of `set` (sorted ascending) occurs in this
    /// transaction. Linear merge — O(|transaction| + |set|).
    pub fn contains_all(&self, set: &[ItemId]) -> bool {
        debug_assert!(set.windows(2).all(|w| w[0] < w[1]));
        let mut t = self.items.iter();
        'outer: for want in set {
            for have in t.by_ref() {
                match have.cmp(want) {
                    std::cmp::Ordering::Less => continue,
                    std::cmp::Ordering::Equal => continue 'outer,
                    std::cmp::Ordering::Greater => return false,
                }
            }
            return false;
        }
        true
    }
}

/// Sort and deduplicate a raw basket in place so it satisfies the
/// [`Transaction`] invariant.
pub(crate) fn normalize(items: &mut Vec<ItemId>) {
    items.sort_unstable();
    items.dedup();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(v: &[u32]) -> Vec<ItemId> {
        v.iter().map(|&i| ItemId(i)).collect()
    }

    #[test]
    fn accessors() {
        let items = ids(&[1, 3, 7]);
        let t = Transaction::new(42, &items);
        assert_eq!(t.tid(), 42);
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
        assert!(t.contains(ItemId(3)));
        assert!(!t.contains(ItemId(4)));
    }

    #[test]
    fn contains_all_merge_logic() {
        let items = ids(&[1, 3, 5, 7, 9]);
        let t = Transaction::new(0, &items);
        assert!(t.contains_all(&ids(&[1, 9])));
        assert!(t.contains_all(&ids(&[3, 5, 7])));
        assert!(t.contains_all(&[]));
        assert!(!t.contains_all(&ids(&[1, 2])));
        assert!(!t.contains_all(&ids(&[0])));
        assert!(!t.contains_all(&ids(&[10])));
        assert!(!t.contains_all(&ids(&[1, 3, 5, 7, 9, 11])));
    }

    #[test]
    fn empty_transaction() {
        let t = Transaction::new(1, &[]);
        assert!(t.is_empty());
        assert!(t.contains_all(&[]));
        assert!(!t.contains_all(&ids(&[1])));
    }

    #[test]
    fn normalize_sorts_and_dedups() {
        let mut v = ids(&[5, 1, 5, 3, 1]);
        normalize(&mut v);
        assert_eq!(v, ids(&[1, 3, 5]));
    }
}
