//! Summary statistics over a transaction source (one pass).

use crate::scan::TransactionSource;
use negassoc_taxonomy::ItemId;
use std::io;

/// Aggregate statistics of a transaction database.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct DbStats {
    /// Number of transactions.
    pub transactions: u64,
    /// Total item occurrences.
    pub item_occurrences: u64,
    /// Number of distinct items seen.
    pub distinct_items: u64,
    /// Longest basket.
    pub max_len: usize,
    /// Shortest basket (0 when any basket is empty).
    pub min_len: usize,
    /// Mean basket length.
    pub avg_len: f64,
}

/// Compute [`DbStats`] plus the per-item occurrence counts (indexed by item
/// id) in one pass.
pub fn collect<S: TransactionSource>(source: &S) -> io::Result<(DbStats, Vec<u64>)> {
    let mut counts: Vec<u64> = Vec::new();
    let mut stats = DbStats {
        min_len: usize::MAX,
        ..DbStats::default()
    };
    source.pass(&mut |t| {
        stats.transactions += 1;
        stats.item_occurrences += t.len() as u64;
        stats.max_len = stats.max_len.max(t.len());
        stats.min_len = stats.min_len.min(t.len());
        for &it in t.items() {
            let idx = it.index();
            if idx >= counts.len() {
                counts.resize(idx + 1, 0);
            }
            counts[idx] += 1;
        }
    })?;
    if stats.transactions == 0 {
        stats.min_len = 0;
    }
    stats.distinct_items = counts.iter().filter(|&&c| c > 0).count() as u64;
    stats.avg_len = if stats.transactions == 0 {
        0.0
    } else {
        stats.item_occurrences as f64 / stats.transactions as f64
    };
    Ok((stats, counts))
}

/// The `n` most frequent items, most frequent first (ties by ascending id).
pub fn top_items(counts: &[u64], n: usize) -> Vec<(ItemId, u64)> {
    let mut pairs: Vec<(ItemId, u64)> = counts
        .iter()
        .enumerate()
        .filter(|&(_, &c)| c > 0)
        .map(|(i, &c)| (ItemId(i as u32), c))
        .collect();
    pairs.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    pairs.truncate(n);
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TransactionDbBuilder;

    fn ids(v: &[u32]) -> Vec<ItemId> {
        v.iter().map(|&i| ItemId(i)).collect()
    }

    #[test]
    fn collect_counts_everything() {
        let mut b = TransactionDbBuilder::new();
        b.add(ids(&[0, 1, 2]));
        b.add(ids(&[1]));
        b.add(ids(&[1, 2]));
        let (stats, counts) = collect(&b.build()).unwrap();
        assert_eq!(stats.transactions, 3);
        assert_eq!(stats.item_occurrences, 6);
        assert_eq!(stats.distinct_items, 3);
        assert_eq!(stats.max_len, 3);
        assert_eq!(stats.min_len, 1);
        assert!((stats.avg_len - 2.0).abs() < 1e-12);
        assert_eq!(counts, vec![1, 3, 2]);
    }

    #[test]
    fn empty_database_stats() {
        let db = TransactionDbBuilder::new().build();
        let (stats, counts) = collect(&db).unwrap();
        assert_eq!(stats, DbStats::default());
        assert!(counts.is_empty());
    }

    #[test]
    fn top_items_orders_and_breaks_ties() {
        let counts = vec![5, 0, 9, 5];
        let top = top_items(&counts, 3);
        assert_eq!(top, vec![(ItemId(2), 9), (ItemId(0), 5), (ItemId(3), 5)]);
        assert_eq!(top_items(&counts, 0).len(), 0);
        assert_eq!(top_items(&[], 5).len(), 0);
    }
}
