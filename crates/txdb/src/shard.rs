//! Sharded transaction databases with per-shard fault domains.
//!
//! A *sharded* database is a directory of independent NADB v2 files plus a
//! checksummed **manifest** recording, per shard, the relative path, whole
//! file CRC-32, TID range, transaction count and format version. The
//! [`ShardedSource`] streams shards one at a time — memory stays bounded by
//! the largest shard, never the whole database — and each shard is its own
//! fault domain:
//!
//! 1. a shard that fails strict verification is retried under the bounded
//!    [`RetryPolicy`] (transient I/O errors only),
//! 2. then read in salvage mode (recovering every block whose checksum
//!    still holds, exactly like `--salvage` on a single file),
//! 3. and only when salvage recovers nothing is it **quarantined** into the
//!    typed [`ShardQuarantine`] report — the remaining shards still mine to
//!    completion and the run reports *degraded* completeness instead of
//!    dying.
//!
//! The manifest's [`ShardManifest::content_digest`] is order-invariant over
//! shard *content* (CRC, TID range, count) but blind to paths, so a resumed
//! checkpoint survives "same shards, different order / renamed files" while
//! any content drift invalidates it.

use crate::binfmt::{self, FileSource, SalvageReport, VERSION_V2};
use crate::crc32::{crc32, Hasher};
use crate::fault::{is_transient, RetryPolicy};
use crate::obs::{metric, Event, Obs};
use crate::transaction::Transaction;
use crate::{TransactionDb, TransactionDbBuilder, TransactionSource};
use std::fmt;
use std::fs::File;
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

/// Manifest file magic.
pub const MANIFEST_MAGIC: &[u8; 4] = b"NAMF";
/// Current manifest format version.
pub const MANIFEST_VERSION: u8 = 1;

/// One shard's line in the manifest: where it lives and what its content
/// must look like for a strict load to accept it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardEntry {
    /// Path relative to the manifest's directory.
    pub path: String,
    /// CRC-32 of the entire shard file.
    pub crc: u32,
    /// Smallest TID stored in the shard (0 when empty).
    pub first_tid: u64,
    /// Largest TID stored in the shard (0 when empty).
    pub last_tid: u64,
    /// Transactions in the shard.
    pub tx_count: u64,
    /// NADB format version of the shard file.
    pub format: u8,
}

/// A checksummed list of [`ShardEntry`]s plus the directory they are
/// relative to. The on-disk layout is `NAMF`, a version byte, a `u32 LE`
/// entry count, the entries, and a trailing CRC-32 over everything before
/// it — a truncated or bit-flipped manifest is rejected before any shard
/// is opened.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardManifest {
    dir: PathBuf,
    entries: Vec<ShardEntry>,
}

impl ShardManifest {
    /// A manifest over `entries`, resolving shard paths against `dir`.
    pub fn new<P: Into<PathBuf>>(dir: P, entries: Vec<ShardEntry>) -> Self {
        Self {
            dir: dir.into(),
            entries,
        }
    }

    /// Load and checksum-verify a manifest; shard paths resolve against
    /// the manifest file's parent directory.
    pub fn load<P: AsRef<Path>>(path: P) -> io::Result<Self> {
        let path = path.as_ref();
        let bytes = std::fs::read(path)?;
        let dir = path
            .parent()
            .unwrap_or_else(|| Path::new("."))
            .to_path_buf();
        Self::parse(&bytes, dir)
    }

    fn parse(bytes: &[u8], dir: PathBuf) -> io::Result<Self> {
        let bad = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_string());
        if bytes.len() < 4 + 1 + 4 + 4 {
            return Err(bad("manifest truncated"));
        }
        if &bytes[0..4] != MANIFEST_MAGIC {
            return Err(bad("not a shard manifest (bad magic; expected NAMF)"));
        }
        if bytes[4] != MANIFEST_VERSION {
            return Err(bad("unsupported manifest version"));
        }
        let body = &bytes[..bytes.len() - 4];
        let stored = le_u32(&bytes[bytes.len() - 4..]);
        if crc32(body) != stored {
            return Err(bad(
                "manifest checksum mismatch (the manifest itself is corrupt)",
            ));
        }
        let count = le_u32(&bytes[5..9]) as usize;
        let mut at = 9usize;
        let mut entries = Vec::with_capacity(count.min(1 << 16));
        let take = |at: &mut usize, n: usize| -> io::Result<&[u8]> {
            let end = at
                .checked_add(n)
                .filter(|&e| e <= body.len())
                .ok_or_else(|| bad("manifest entry truncated"))?;
            let s = &body[*at..end];
            *at = end;
            Ok(s)
        };
        for _ in 0..count {
            let path_len = le_u16(take(&mut at, 2)?) as usize;
            let path = std::str::from_utf8(take(&mut at, path_len)?)
                .map_err(|_| bad("manifest shard path is not UTF-8"))?
                .to_string();
            let crc = le_u32(take(&mut at, 4)?);
            let first_tid = le_u64(take(&mut at, 8)?);
            let last_tid = le_u64(take(&mut at, 8)?);
            let tx_count = le_u64(take(&mut at, 8)?);
            let format = take(&mut at, 1)?[0];
            entries.push(ShardEntry {
                path,
                crc,
                first_tid,
                last_tid,
                tx_count,
                format,
            });
        }
        if at != body.len() {
            return Err(bad("manifest has trailing bytes after the last entry"));
        }
        Ok(Self { dir, entries })
    }

    /// Serialize the manifest (with its trailing checksum) to `path`.
    pub fn save<P: AsRef<Path>>(&self, path: P) -> io::Result<()> {
        let mut body = Vec::new();
        body.extend_from_slice(MANIFEST_MAGIC);
        body.push(MANIFEST_VERSION);
        body.extend_from_slice(&(self.entries.len() as u32).to_le_bytes());
        for e in &self.entries {
            if e.path.len() > u16::MAX as usize {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    "shard path longer than 65535 bytes",
                ));
            }
            body.extend_from_slice(&(e.path.len() as u16).to_le_bytes());
            body.extend_from_slice(e.path.as_bytes());
            body.extend_from_slice(&e.crc.to_le_bytes());
            body.extend_from_slice(&e.first_tid.to_le_bytes());
            body.extend_from_slice(&e.last_tid.to_le_bytes());
            body.extend_from_slice(&e.tx_count.to_le_bytes());
            body.push(e.format);
        }
        let crc = crc32(&body);
        let mut f = File::create(path)?;
        f.write_all(&body)?;
        f.write_all(&crc.to_le_bytes())?;
        f.sync_all()
    }

    /// The shard entries, in manifest (mining) order.
    pub fn entries(&self) -> &[ShardEntry] {
        &self.entries
    }

    /// Number of shards.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when the manifest lists no shards.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Absolute(-ish) path of shard `index`, resolved against the
    /// manifest directory.
    pub fn shard_path(&self, index: usize) -> PathBuf {
        self.dir.join(&self.entries[index].path)
    }

    /// Total transactions across every shard, per the manifest.
    pub fn total_transactions(&self) -> u64 {
        self.entries.iter().map(|e| e.tx_count).sum()
    }

    /// An order-invariant digest of shard *content* (CRC, TID range,
    /// count — deliberately not paths). Checkpoint fingerprints mix this
    /// in so a resume survives a reordered or renamed manifest but not
    /// content drift.
    pub fn content_digest(&self) -> u64 {
        self.entries
            .iter()
            .map(|e| {
                let mut h = u64::from(e.crc);
                h = mix64(h ^ e.tx_count);
                h = mix64(h ^ e.first_tid);
                h = mix64(h ^ e.last_tid);
                mix64(h ^ u64::from(e.format))
            })
            .fold(0u64, u64::wrapping_add)
    }
}

/// Little-endian field readers for [`ShardManifest::parse`]. Callers
/// guarantee the slice length (via `take`), so plain indexing suffices —
/// the same idiom `binfmt` uses for its block headers.
fn le_u16(b: &[u8]) -> u16 {
    u16::from_le_bytes([b[0], b[1]])
}

fn le_u32(b: &[u8]) -> u32 {
    u32::from_le_bytes([b[0], b[1], b[2], b[3]])
}

fn le_u64(b: &[u8]) -> u64 {
    u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]])
}

/// The splitmix64 finalizer: a cheap, well-mixed 64-bit permutation.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// CRC-32 of an entire file, streamed in 64 KiB chunks.
fn file_crc(path: &Path) -> io::Result<u32> {
    let mut f = File::open(path)?;
    let mut h = Hasher::new();
    let mut buf = vec![0u8; 64 * 1024];
    loop {
        let n = f.read(&mut buf)?;
        if n == 0 {
            return Ok(h.finalize());
        }
        h.update(&buf[..n]);
    }
}

/// Split `source` into `num_shards` NADB v2 files next to `manifest_path`
/// (named `{stem}-shard-{i:03}.nadb`), write the checksummed manifest, and
/// return it. Shard sizes differ by at most one transaction and the
/// concatenation of shards in manifest order replays `source` exactly
/// (TIDs preserved).
pub fn write_sharded<S: TransactionSource + ?Sized, P: AsRef<Path>>(
    source: &S,
    manifest_path: P,
    num_shards: usize,
) -> io::Result<ShardManifest> {
    let manifest_path = manifest_path.as_ref();
    if num_shards == 0 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "cannot split a database into zero shards",
        ));
    }
    let dir = manifest_path
        .parent()
        .unwrap_or_else(|| Path::new("."))
        .to_path_buf();
    let stem = manifest_path
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("db")
        .to_string();
    let total = source.count_transactions()?;
    let base = total / num_shards as u64;
    let extra = (total % num_shards as u64) as usize;
    let target = |i: usize| base + u64::from(i < extra);

    let mut entries: Vec<ShardEntry> = Vec::with_capacity(num_shards);
    let mut builder = TransactionDbBuilder::new();
    let mut shard = 0usize;
    let mut filled = 0u64;
    let mut result: io::Result<()> = Ok(());
    source.pass(&mut |t| {
        if result.is_err() {
            return;
        }
        builder.add_with_tid(t.tid(), t.items().iter().copied());
        filled += 1;
        if shard + 1 < num_shards && filled == target(shard) {
            result = flush_shard(&dir, &stem, shard, &mut builder).map(|e| entries.push(e));
            shard += 1;
            filled = 0;
        }
    })?;
    result?;
    // The last shard (and, when the source was shorter than the manifest
    // promised, any remaining empty shards) flush after the pass.
    while shard < num_shards {
        entries.push(flush_shard(&dir, &stem, shard, &mut builder)?);
        shard += 1;
    }
    let manifest = ShardManifest::new(dir, entries);
    manifest.save(manifest_path)?;
    Ok(manifest)
}

/// Write the accumulated builder out as shard `index` and describe it.
fn flush_shard(
    dir: &Path,
    stem: &str,
    index: usize,
    builder: &mut TransactionDbBuilder,
) -> io::Result<ShardEntry> {
    let db = std::mem::replace(builder, TransactionDbBuilder::new()).build();
    let name = format!("{stem}-shard-{index:03}.nadb");
    let path = dir.join(&name);
    binfmt::save(&db, &path)?;
    let crc = file_crc(&path)?;
    let mut first = u64::MAX;
    let mut last = 0u64;
    for t in db.iter() {
        first = first.min(t.tid());
        last = last.max(t.tid());
    }
    if db.is_empty() {
        first = 0;
    }
    Ok(ShardEntry {
        path: name,
        crc,
        first_tid: first,
        last_tid: last,
        tx_count: db.len() as u64,
        format: VERSION_V2,
    })
}

/// How a [`ShardedSource`] treats a shard that fails strict verification.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShardMode {
    /// Any failing shard fails the whole open with a [`ShardLoadError`].
    Strict,
    /// Failing shards are salvaged when possible and quarantined
    /// otherwise; the remaining shards still mine to completion.
    Degrade,
}

/// Per-shard verdict, decided once when the source opens.
#[derive(Debug)]
enum ShardState {
    /// Strict verification passed; passes stream it with [`FileSource`].
    Healthy,
    /// Strict load failed but salvage recovers these blocks; passes
    /// re-salvage and insist on this exact report (no drift mid-run).
    Salvaged(SalvageReport),
    /// Unrecoverable: skipped by every pass, named in the quarantine.
    Quarantined,
}

/// One quarantined shard: which, where, why, and how much it cost.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QuarantinedShard {
    /// Index in manifest order.
    pub index: usize,
    /// Display path of the shard file.
    pub path: String,
    /// Human-readable reason the shard was quarantined.
    pub reason: String,
    /// Transactions the manifest says the shard held.
    pub lost_transactions: u64,
}

/// The typed run-level report of shards that could not be read at all.
/// Empty for a healthy run; non-empty means the mine was *degraded* —
/// exact over the delivered transactions, silent about these.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ShardQuarantine {
    /// Quarantined shards in manifest order.
    pub shards: Vec<QuarantinedShard>,
}

impl ShardQuarantine {
    /// `true` when no shard was quarantined.
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// Total transactions lost to quarantined shards (per the manifest).
    pub fn lost_transactions(&self) -> u64 {
        self.shards.iter().map(|s| s.lost_transactions).sum()
    }
}

impl fmt::Display for ShardQuarantine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return write!(f, "quarantine: empty (all shards healthy)");
        }
        writeln!(
            f,
            "quarantine: {} shard(s) unreadable, {} transactions lost",
            self.shards.len(),
            self.lost_transactions()
        )?;
        for (i, s) in self.shards.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(
                f,
                "  shard {} ({}): {} — {} transactions lost",
                s.index, s.path, s.reason, s.lost_transactions
            )?;
        }
        Ok(())
    }
}

/// A shard failed strict load. Carries which shard and the underlying
/// error so callers (the CLI hint, tests) can name the offending file
/// instead of pointing at "the database".
#[derive(Debug)]
pub struct ShardLoadError {
    /// Index in manifest order.
    pub index: usize,
    /// Resolved path of the failing shard.
    pub path: PathBuf,
    /// What went wrong with it.
    pub error: io::Error,
}

impl fmt::Display for ShardLoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "shard {} ({}) failed strict load: {}",
            self.index,
            self.path.display(),
            self.error
        )
    }
}

impl std::error::Error for ShardLoadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.error)
    }
}

impl From<ShardLoadError> for io::Error {
    fn from(e: ShardLoadError) -> Self {
        io::Error::new(e.error.kind(), e)
    }
}

/// Random access to the shards behind a [`TransactionSource`] — what the
/// memory-bounded partition fallback needs to mine one shard at a time.
pub trait ShardAccess {
    /// Number of shards in manifest order (quarantined ones included).
    fn shard_count(&self) -> usize;

    /// Load shard `index` into memory. `Ok(None)` means the shard is
    /// quarantined (skip it); `Err` means a previously readable shard
    /// changed underfoot.
    fn load_shard(&self, index: usize) -> io::Result<Option<TransactionDb>>;
}

/// Streams a sharded database one shard at a time, with each shard its
/// own fault domain (see the module docs for the retry → salvage →
/// quarantine ladder). Memory is bounded by one shard regardless of how
/// many the manifest lists.
#[derive(Debug)]
pub struct ShardedSource {
    manifest: ShardManifest,
    states: Vec<ShardState>,
    quarantine: ShardQuarantine,
    retry: RetryPolicy,
    delivered: u64,
    obs: Obs,
}

impl ShardedSource {
    /// Open strictly: every shard must verify byte-for-byte against the
    /// manifest or the open fails with a [`ShardLoadError`].
    pub fn open<P: AsRef<Path>>(manifest_path: P) -> io::Result<Self> {
        Self::open_with(
            manifest_path,
            ShardMode::Strict,
            RetryPolicy::default(),
            Obs::disabled(),
        )
    }

    /// Open in degrade mode: failing shards are salvaged or quarantined
    /// and the rest still stream.
    pub fn open_degraded<P: AsRef<Path>>(manifest_path: P) -> io::Result<Self> {
        Self::open_with(
            manifest_path,
            ShardMode::Degrade,
            RetryPolicy::default(),
            Obs::disabled(),
        )
    }

    /// Open with explicit mode, retry policy and observability handle.
    /// Shard classification (verify → retry → salvage → quarantine)
    /// happens here, once; passes replay the verdicts.
    pub fn open_with<P: AsRef<Path>>(
        manifest_path: P,
        mode: ShardMode,
        retry: RetryPolicy,
        obs: Obs,
    ) -> io::Result<Self> {
        let manifest = ShardManifest::load(manifest_path)?;
        let mut states = Vec::with_capacity(manifest.len());
        let mut quarantine = ShardQuarantine::default();
        let mut delivered = 0u64;
        for (i, entry) in manifest.entries().iter().enumerate() {
            let path = manifest.shard_path(i);
            match classify_with_retry(&path, entry, retry, &obs) {
                Ok(()) => {
                    delivered += entry.tx_count;
                    states.push(ShardState::Healthy);
                }
                Err(fail) => {
                    if mode == ShardMode::Strict {
                        return Err(ShardLoadError {
                            index: i,
                            path,
                            error: fail.error,
                        }
                        .into());
                    }
                    // Drift (file readable but not the manifest's file) is
                    // never salvaged: its blocks may decode fine and still
                    // be the wrong data.
                    let salvage = if fail.drift {
                        None
                    } else {
                        binfmt::salvage_pass(&path, &mut |_| {}).ok()
                    };
                    match salvage {
                        Some(report) if report.recovered > 0 => {
                            delivered += report.recovered;
                            states.push(ShardState::Salvaged(report));
                        }
                        // A salvage that recovered nothing proves nothing
                        // about the shard: keeping it as an empty source
                        // would silently shrink the database under the
                        // manifest's promise and skew pass-1 supports, so
                        // zero-recovery shards quarantine like unreadable
                        // ones — even when the manifest expected 0 tx.
                        salvage => {
                            let display = path.display().to_string();
                            let mut reason = fail.error.to_string();
                            if salvage.is_some() {
                                reason.push_str("; salvage recovered 0 transactions");
                            }
                            obs.emit(|| Event::ShardQuarantined {
                                index: i,
                                path: display.clone(),
                                error: reason.clone(),
                            });
                            quarantine.shards.push(QuarantinedShard {
                                index: i,
                                path: display,
                                reason,
                                lost_transactions: entry.tx_count,
                            });
                            states.push(ShardState::Quarantined);
                        }
                    }
                }
            }
        }
        Ok(Self {
            manifest,
            states,
            quarantine,
            retry,
            delivered,
            obs,
        })
    }

    /// The verified manifest.
    pub fn manifest(&self) -> &ShardManifest {
        &self.manifest
    }

    /// The quarantine report (empty for a fully healthy source).
    pub fn quarantine(&self) -> &ShardQuarantine {
        &self.quarantine
    }

    /// Per-shard salvage reports merged into one run-level report.
    /// Clean (recovered = delivered, nothing lost) when no shard needed
    /// salvage; quarantined shards appear as `lost_tail` transactions.
    pub fn salvage_report(&self) -> SalvageReport {
        let mut merged = SalvageReport {
            recovered: 0,
            lost_blocks: Vec::new(),
            lost_tail: 0,
        };
        for (i, state) in self.states.iter().enumerate() {
            match state {
                ShardState::Healthy => merged.recovered += self.manifest.entries()[i].tx_count,
                ShardState::Salvaged(r) => merged.merge(r.clone()),
                ShardState::Quarantined => {
                    merged.lost_tail += self.manifest.entries()[i].tx_count;
                }
            }
        }
        merged
    }
}

/// Why a shard failed strict classification. `drift` marks "the file
/// reads fine but is not the file the manifest describes" — salvage must
/// not touch those.
struct ClassifyFailure {
    error: io::Error,
    drift: bool,
}

/// Strict verification of one shard against its manifest entry.
fn classify(path: &Path, entry: &ShardEntry) -> Result<(), ClassifyFailure> {
    let n = binfmt::verify(path).map_err(|error| ClassifyFailure {
        error,
        drift: false,
    })?;
    if n != entry.tx_count {
        return Err(ClassifyFailure {
            error: io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "content drift: shard holds {n} transactions, manifest expects {}",
                    entry.tx_count
                ),
            ),
            drift: true,
        });
    }
    let crc = file_crc(path).map_err(|error| ClassifyFailure {
        error,
        drift: false,
    })?;
    if crc != entry.crc {
        return Err(ClassifyFailure {
            error: io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "content drift: shard file CRC {crc:#010x} != manifest {:#010x}",
                    entry.crc
                ),
            ),
            drift: true,
        });
    }
    Ok(())
}

/// [`classify`], retried under `retry` for transient I/O errors only.
fn classify_with_retry(
    path: &Path,
    entry: &ShardEntry,
    retry: RetryPolicy,
    obs: &Obs,
) -> Result<(), ClassifyFailure> {
    let mut attempt = 0u32;
    loop {
        match classify(path, entry) {
            Ok(()) => return Ok(()),
            Err(fail) => {
                if fail.drift || !is_transient(&fail.error) || attempt >= retry.max_retries {
                    return Err(fail);
                }
                obs.bump(metric::RETRIES, 1);
                retry.sleep(attempt);
                attempt += 1;
            }
        }
    }
}

impl TransactionSource for ShardedSource {
    fn pass(&self, f: &mut dyn FnMut(Transaction<'_>)) -> io::Result<()> {
        for (i, entry) in self.manifest.entries().iter().enumerate() {
            let path = self.manifest.shard_path(i);
            match &self.states[i] {
                ShardState::Quarantined => continue,
                ShardState::Healthy => {
                    self.obs.emit(|| Event::ShardStart {
                        index: i,
                        path: path.display().to_string(),
                    });
                    let src = FileSource::open(&path)?.with_retry(self.retry);
                    let mut n = 0u64;
                    src.pass(&mut |t| {
                        n += 1;
                        f(t)
                    })?;
                    if n != entry.tx_count {
                        return Err(shard_changed(i, &path));
                    }
                    self.obs.emit(|| Event::ShardEnd {
                        index: i,
                        transactions: n,
                    });
                }
                ShardState::Salvaged(expected) => {
                    self.obs.emit(|| Event::ShardStart {
                        index: i,
                        path: path.display().to_string(),
                    });
                    let report = binfmt::salvage_pass(&path, f)?;
                    if report != *expected {
                        return Err(shard_changed(i, &path));
                    }
                    self.obs.emit(|| Event::ShardEnd {
                        index: i,
                        transactions: report.recovered,
                    });
                }
            }
        }
        Ok(())
    }

    fn len_hint(&self) -> Option<u64> {
        Some(self.delivered)
    }

    fn as_shards(&self) -> Option<&dyn ShardAccess> {
        Some(self)
    }

    fn content_digest(&self) -> Option<u64> {
        Some(self.manifest.content_digest())
    }

    fn quarantined_shards(&self) -> Vec<String> {
        self.quarantine
            .shards
            .iter()
            .map(|s| s.path.clone())
            .collect()
    }
}

/// The every-pass invariant: a shard classified at open must deliver the
/// same transactions on every later pass.
fn shard_changed(index: usize, path: &Path) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!(
            "shard {index} ({}) changed between passes; rerun to reclassify",
            path.display()
        ),
    )
}

impl ShardAccess for ShardedSource {
    fn shard_count(&self) -> usize {
        self.manifest.len()
    }

    fn load_shard(&self, index: usize) -> io::Result<Option<TransactionDb>> {
        let path = self.manifest.shard_path(index);
        match &self.states[index] {
            ShardState::Quarantined => Ok(None),
            ShardState::Healthy => binfmt::load(&path).map(Some),
            ShardState::Salvaged(expected) => {
                let (db, report) = binfmt::load_salvage(&path)?;
                if report != *expected {
                    return Err(shard_changed(index, &path));
                }
                Ok(Some(db))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use negassoc_taxonomy::ItemId;
    use std::io::{Seek, SeekFrom};

    /// A unique temp directory cleaned up on drop.
    struct TempDir(PathBuf);

    impl TempDir {
        fn new(name: &str) -> Self {
            use std::sync::atomic::{AtomicU64, Ordering};
            static SEQ: AtomicU64 = AtomicU64::new(0);
            let n = SEQ.fetch_add(1, Ordering::Relaxed);
            let dir = std::env::temp_dir()
                .join(format!("negassoc-shard-{}-{n}-{name}", std::process::id()));
            std::fs::create_dir_all(&dir).unwrap();
            TempDir(dir)
        }

        fn path(&self) -> &Path {
            &self.0
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            std::fs::remove_dir_all(&self.0).ok();
        }
    }

    fn sample_db(n: u64) -> TransactionDb {
        let mut b = TransactionDbBuilder::new();
        for i in 0..n {
            b.add_with_tid(i, [ItemId(i as u32 % 50), ItemId(100 + i as u32 % 10)]);
        }
        b.build()
    }

    fn collect(src: &dyn TransactionSource) -> Vec<(u64, Vec<ItemId>)> {
        let mut out = Vec::new();
        src.pass(&mut |t| out.push((t.tid(), t.items().to_vec())))
            .unwrap();
        out
    }

    fn corrupt_at(path: &Path, offset: u64, bytes: &[u8]) {
        let mut f = std::fs::OpenOptions::new().write(true).open(path).unwrap();
        f.seek(SeekFrom::Start(offset)).unwrap();
        f.write_all(bytes).unwrap();
    }

    #[test]
    fn manifest_round_trips_and_rejects_corruption() {
        let dir = TempDir::new("manifest");
        let entries = vec![
            ShardEntry {
                path: "a.nadb".into(),
                crc: 0xDEAD_BEEF,
                first_tid: 0,
                last_tid: 9,
                tx_count: 10,
                format: VERSION_V2,
            },
            ShardEntry {
                path: "b.nadb".into(),
                crc: 0x1234_5678,
                first_tid: 10,
                last_tid: 19,
                tx_count: 10,
                format: VERSION_V2,
            },
        ];
        let m = ShardManifest::new(dir.path(), entries.clone());
        let p = dir.path().join("db.manifest");
        m.save(&p).unwrap();
        let loaded = ShardManifest::load(&p).unwrap();
        assert_eq!(loaded.entries(), entries.as_slice());
        assert_eq!(loaded.total_transactions(), 20);
        assert_eq!(loaded.shard_path(1), dir.path().join("b.nadb"));

        // Flip one byte inside an entry: the trailing CRC must catch it.
        corrupt_at(&p, 12, &[0xFF]);
        let err = ShardManifest::load(&p).unwrap_err();
        assert!(err.to_string().contains("checksum"), "got: {err}");
    }

    #[test]
    fn write_sharded_splits_evenly_and_pass_matches_unsharded() {
        let dir = TempDir::new("split");
        let db = sample_db(10);
        let p = dir.path().join("db.manifest");
        let manifest = write_sharded(&db, &p, 3).unwrap();
        // 10 over 3 shards: 4 + 3 + 3.
        let counts: Vec<u64> = manifest.entries().iter().map(|e| e.tx_count).collect();
        assert_eq!(counts, vec![4, 3, 3]);
        assert_eq!(manifest.entries()[1].first_tid, 4);
        assert_eq!(manifest.entries()[1].last_tid, 6);

        let src = ShardedSource::open(&p).unwrap();
        assert_eq!(src.len_hint(), Some(10));
        assert!(src.quarantine().is_empty());
        assert!(src.quarantined_shards().is_empty());
        assert_eq!(collect(&src), collect(&db));
        // Deterministic across repeated passes.
        assert_eq!(collect(&src), collect(&src));
    }

    #[test]
    fn zero_shards_is_an_input_error_and_excess_shards_come_out_empty() {
        let dir = TempDir::new("degenerate");
        let db = sample_db(2);
        let err = write_sharded(&db, dir.path().join("z.manifest"), 0).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);

        let p = dir.path().join("wide.manifest");
        let manifest = write_sharded(&db, &p, 5).unwrap();
        let counts: Vec<u64> = manifest.entries().iter().map(|e| e.tx_count).collect();
        assert_eq!(counts, vec![1, 1, 0, 0, 0]);
        let src = ShardedSource::open(&p).unwrap();
        assert_eq!(collect(&src), collect(&db));
    }

    #[test]
    fn strict_open_names_the_failing_shard() {
        let dir = TempDir::new("strict");
        let db = sample_db(10);
        let p = dir.path().join("db.manifest");
        let manifest = write_sharded(&db, &p, 3).unwrap();
        let victim = manifest.shard_path(1);
        corrupt_at(&victim, 0, b"XXXX"); // destroy the magic

        let err = match ShardedSource::open(&p) {
            Ok(_) => panic!("strict open of a corrupt shard should fail"),
            Err(e) => e,
        };
        let sle = err
            .get_ref()
            .and_then(|r| r.downcast_ref::<ShardLoadError>())
            .expect("strict failure should carry a ShardLoadError");
        assert_eq!(sle.index, 1);
        assert_eq!(sle.path, victim);
        assert!(err.to_string().contains("failed strict load"), "got: {err}");
    }

    #[test]
    fn degrade_mode_quarantines_an_unreadable_shard_and_streams_the_rest() {
        let dir = TempDir::new("quarantine");
        let db = sample_db(10);
        let p = dir.path().join("db.manifest");
        let manifest = write_sharded(&db, &p, 3).unwrap();
        corrupt_at(&manifest.shard_path(1), 0, b"XXXX");

        let src = ShardedSource::open_degraded(&p).unwrap();
        assert_eq!(src.quarantine().shards.len(), 1);
        assert_eq!(src.quarantine().shards[0].index, 1);
        assert_eq!(src.quarantine().lost_transactions(), 3);
        assert_eq!(src.len_hint(), Some(7));
        assert_eq!(
            src.quarantined_shards(),
            vec![manifest.shard_path(1).display().to_string()]
        );

        // Delivery equals the healthy shards mined alone, in order.
        let mut expect = collect(&binfmt::load(manifest.shard_path(0)).unwrap());
        expect.extend(collect(&binfmt::load(manifest.shard_path(2)).unwrap()));
        assert_eq!(collect(&src), expect);

        // The merged salvage view books the quarantined shard as lost.
        let report = src.salvage_report();
        assert_eq!(report.recovered, 7);
        assert_eq!(report.lost_transactions(), 3);
    }

    #[test]
    fn empty_recovery_shard_is_quarantined_not_kept_as_empty_source() {
        // A manifest with a promised-empty shard (2 tx over 5 shards
        // leaves shards 2..4 empty). Overwrite the empty shard with a
        // file that *claims* transactions but salvages to exactly 0: it
        // must land in quarantine with the zero-recovery stated, never
        // silently stream as an empty source.
        let dir = TempDir::new("empty-recovery");
        let db = sample_db(2);
        let p = dir.path().join("wide.manifest");
        let manifest = write_sharded(&db, &p, 5).unwrap();
        assert_eq!(manifest.entries()[2].tx_count, 0);

        // Donor: a single-block shard whose payload byte-flip fails the
        // payload CRC, so salvage recovers 0 of its 3 transactions.
        let donor_dir = TempDir::new("empty-recovery-donor");
        let donor = write_sharded(&sample_db(3), donor_dir.path().join("d.manifest"), 1).unwrap();
        corrupt_at(&donor.shard_path(0), 13 + 32, &[0xFF]);
        std::fs::copy(donor.shard_path(0), manifest.shard_path(2)).unwrap();

        let src = ShardedSource::open_degraded(&p).unwrap();
        assert_eq!(src.quarantine().shards.len(), 1);
        let q = &src.quarantine().shards[0];
        assert_eq!(q.index, 2);
        assert!(
            q.reason.contains("salvage recovered 0 transactions"),
            "reason should state the empty recovery, got: {}",
            q.reason
        );
        // The manifest promised nothing from this shard, so nothing is
        // booked as lost — and healthy delivery is untouched.
        assert_eq!(q.lost_transactions, 0);
        assert_eq!(src.len_hint(), Some(2));
        assert_eq!(collect(&src), collect(&db));
        let report = src.salvage_report();
        assert_eq!(report.recovered, 2);
        assert_eq!(report.lost_transactions(), 0);
    }

    #[test]
    fn degrade_mode_salvages_a_partially_corrupt_shard() {
        let dir = TempDir::new("salvage");
        // 600 transactions in one shard: blocks of 512 + 88. Corrupting
        // the first block's payload loses 512 and salvages 88.
        let db = sample_db(600);
        let p = dir.path().join("db.manifest");
        let manifest = write_sharded(&db, &p, 1).unwrap();
        // First payload byte lives right after the 13-byte file header
        // and the 32-byte block header.
        corrupt_at(&manifest.shard_path(0), 13 + 32, &[0xFF]);

        let src = ShardedSource::open_degraded(&p).unwrap();
        assert!(src.quarantine().is_empty());
        assert_eq!(src.len_hint(), Some(88));
        let got = collect(&src);
        assert_eq!(got.len(), 88);
        assert_eq!(got[0].0, 512); // delivery resumes at the second block
        let report = src.salvage_report();
        assert_eq!(report.recovered, 88);
        assert_eq!(report.lost_transactions(), 512);
        // Repeated passes re-verify the same salvage outcome.
        assert_eq!(collect(&src), got);
    }

    #[test]
    fn shard_access_skips_quarantined_and_loads_the_rest() {
        let dir = TempDir::new("access");
        let db = sample_db(10);
        let p = dir.path().join("db.manifest");
        let manifest = write_sharded(&db, &p, 3).unwrap();
        corrupt_at(&manifest.shard_path(0), 0, b"XXXX");

        let src = ShardedSource::open_degraded(&p).unwrap();
        let shards = src.as_shards().unwrap();
        assert_eq!(shards.shard_count(), 3);
        assert!(shards.load_shard(0).unwrap().is_none());
        let one = shards.load_shard(1).unwrap().unwrap();
        assert_eq!(one.len(), 3);
        assert_eq!(
            collect(&one),
            collect(&binfmt::load(manifest.shard_path(1)).unwrap())
        );
    }

    #[test]
    fn content_digest_ignores_order_and_paths_but_not_content() {
        let e = |path: &str, crc: u32| ShardEntry {
            path: path.into(),
            crc,
            first_tid: 0,
            last_tid: 9,
            tx_count: 10,
            format: VERSION_V2,
        };
        let a = ShardManifest::new("/x", vec![e("a.nadb", 1), e("b.nadb", 2)]);
        let reordered = ShardManifest::new("/y", vec![e("renamed.nadb", 2), e("a.nadb", 1)]);
        let drifted = ShardManifest::new("/x", vec![e("a.nadb", 1), e("b.nadb", 3)]);
        assert_eq!(a.content_digest(), reordered.content_digest());
        assert_ne!(a.content_digest(), drifted.content_digest());
    }

    #[test]
    fn drift_is_quarantined_not_salvaged() {
        let dir = TempDir::new("drift");
        let db = sample_db(10);
        let p = dir.path().join("db.manifest");
        let manifest = write_sharded(&db, &p, 2).unwrap();
        // Replace shard 1 with a perfectly valid but *different* file:
        // every block checksums, yet it is not the manifest's data.
        binfmt::save(&sample_db(5), manifest.shard_path(1)).unwrap();

        let src = ShardedSource::open_degraded(&p).unwrap();
        assert_eq!(src.quarantine().shards.len(), 1);
        assert!(
            src.quarantine().shards[0].reason.contains("drift"),
            "got: {}",
            src.quarantine().shards[0].reason
        );
        assert_eq!(src.len_hint(), Some(5));
    }

    #[test]
    fn quarantine_display_names_shards() {
        let q = ShardQuarantine {
            shards: vec![QuarantinedShard {
                index: 2,
                path: "/tmp/db-shard-002.nadb".into(),
                reason: "checksum mismatch in block 0".into(),
                lost_transactions: 40,
            }],
        };
        let s = q.to_string();
        assert!(s.contains("1 shard(s) unreadable"), "got: {s}");
        assert!(s.contains("db-shard-002.nadb"), "got: {s}");
        assert!(s.contains("40 transactions lost"), "got: {s}");
        assert!(ShardQuarantine::default().to_string().contains("empty"));
    }
}
