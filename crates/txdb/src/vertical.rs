//! Vertical (TID-list and TID-bitmap) representations of a transaction
//! database.
//!
//! [`TidListIndex`] stores, for every item, the sorted list of transaction
//! positions containing it; the support of an itemset is the size of the
//! intersection of its members' lists. With a taxonomy, a category's list
//! is the union of its descendants' lists, so *generalized* supports fall
//! out of the same intersection. This serves as an alternative counting
//! backend: after the one pass that builds the index, any number of
//! candidate itemsets can be counted without touching the database again.
//!
//! [`TidBitmap`] is the packed sibling: one bitset of `u64` words per item
//! row, support by word-wise AND + popcount. Category rows are the OR-union
//! of their descendants' rows, computed **once** at build time instead of
//! per query. [`BitmapChunk`] is the partitionable building block the
//! parallel counting layer uses: each worker owns chunks covering only the
//! transaction blocks it was dealt, so per-worker partial popcounts merge
//! by plain addition (Savasere et al.'s partition invariant, bit-level).

use crate::block::{parallel_pass, Parallelism, DEFAULT_BLOCK_SIZE};
use crate::scan::TransactionSource;
use negassoc_taxonomy::{ItemId, Taxonomy};
use std::io;

/// An inverted index from item to the sorted TID-positions containing it.
///
/// ```
/// use negassoc_txdb::{vertical::TidListIndex, TransactionDbBuilder};
/// use negassoc_taxonomy::ItemId;
///
/// let mut b = TransactionDbBuilder::new();
/// b.add([ItemId(1), ItemId(2)]);
/// b.add([ItemId(2)]);
/// let idx = TidListIndex::build(&b.build()).unwrap();
/// assert_eq!(idx.support(&[ItemId(2)]), 2);
/// assert_eq!(idx.support(&[ItemId(1), ItemId(2)]), 1);
/// ```
#[derive(Clone, Debug)]
pub struct TidListIndex {
    lists: Vec<Vec<u32>>,
    num_transactions: u64,
}

impl TidListIndex {
    /// Build an index over the *literal* items of `source` (no taxonomy).
    /// Costs one pass.
    pub fn build<S: TransactionSource>(source: &S) -> io::Result<Self> {
        Self::build_inner(source, None)
    }

    /// Build an index in which every transaction is extended with the
    /// ancestors of its items, so category supports are directly queryable.
    /// Costs one pass.
    pub fn build_generalized<S: TransactionSource>(
        source: &S,
        taxonomy: &Taxonomy,
    ) -> io::Result<Self> {
        Self::build_inner(source, Some(taxonomy))
    }

    /// [`Self::build`] / [`Self::build_generalized`] with a worker pool:
    /// each worker indexes whole transaction blocks (absolute positions,
    /// so lists from different blocks never interleave) and the blocks are
    /// merged back in stream order. The result is identical to the
    /// sequential build — same lists, same order — for any thread count,
    /// including over streamed sources.
    pub fn build_with<S: TransactionSource + ?Sized>(
        source: &S,
        taxonomy: Option<&Taxonomy>,
        parallelism: Parallelism,
    ) -> io::Result<Self> {
        let threads = parallelism.resolve();
        if threads <= 1 {
            return Self::build_inner(source, taxonomy);
        }
        // Worker state: (block start, per-item positions) per block seen,
        // plus an overflow marker for positions beyond u32.
        type BlockLists = (u64, Vec<Vec<u32>>);
        let seed_len = taxonomy.map_or(0, Taxonomy::len);
        let (parts, total) = parallel_pass(
            source,
            threads,
            DEFAULT_BLOCK_SIZE,
            || (Vec::<BlockLists>::new(), false),
            |(blocks, overflow), block| {
                let mut lists: Vec<Vec<u32>> = vec![Vec::new(); seed_len];
                for (i, t) in block.iter().enumerate() {
                    let Ok(pos) = u32::try_from(block.start() + i as u64) else {
                        *overflow = true;
                        return;
                    };
                    for &item in t.items() {
                        let idx = item.index();
                        if idx >= lists.len() {
                            lists.resize_with(idx + 1, Vec::new);
                        }
                        push_unique(&mut lists[idx], pos);
                        if let Some(tax) = taxonomy {
                            for anc in tax.ancestors(item) {
                                push_unique(&mut lists[anc.index()], pos);
                            }
                        }
                    }
                }
                blocks.push((block.start(), lists));
            },
            |state| state,
        )?;
        if total > u64::from(u32::MAX) || parts.iter().any(|(_, overflow)| *overflow) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "TID-list index supports at most u32::MAX transactions",
            ));
        }
        // Stitch the blocks back together in stream order. Positions are
        // absolute and blocks are disjoint, so per-item concatenation in
        // block order reproduces the sequential build's sorted lists.
        let mut blocks: Vec<BlockLists> =
            parts.into_iter().flat_map(|(blocks, _)| blocks).collect();
        blocks.sort_unstable_by_key(|(start, _)| *start);
        let mut lists: Vec<Vec<u32>> = vec![Vec::new(); seed_len];
        for (_, block_lists) in blocks {
            if block_lists.len() > lists.len() {
                lists.resize_with(block_lists.len(), Vec::new);
            }
            for (idx, mut positions) in block_lists.into_iter().enumerate() {
                if !positions.is_empty() {
                    lists[idx].append(&mut positions);
                }
            }
        }
        Ok(Self {
            lists,
            num_transactions: total,
        })
    }

    fn build_inner<S: TransactionSource + ?Sized>(
        source: &S,
        taxonomy: Option<&Taxonomy>,
    ) -> io::Result<Self> {
        let mut lists: Vec<Vec<u32>> = match taxonomy {
            Some(t) => vec![Vec::new(); t.len()],
            None => Vec::new(),
        };
        let mut pos: u32 = 0;
        let mut overflow = false;
        source.pass(&mut |t| {
            if overflow {
                return;
            }
            for &item in t.items() {
                let idx = item.index();
                if idx >= lists.len() {
                    lists.resize_with(idx + 1, Vec::new);
                }
                push_unique(&mut lists[idx], pos);
                if let Some(tax) = taxonomy {
                    for anc in tax.ancestors(item) {
                        push_unique(&mut lists[anc.index()], pos);
                    }
                }
            }
            pos = match pos.checked_add(1) {
                Some(p) => p,
                None => {
                    overflow = true;
                    pos
                }
            };
        })?;
        if overflow {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "TID-list index supports at most u32::MAX transactions",
            ));
        }
        Ok(Self {
            lists,
            num_transactions: u64::from(pos),
        })
    }

    /// Number of transactions indexed.
    #[inline]
    pub fn num_transactions(&self) -> u64 {
        self.num_transactions
    }

    /// One past the largest item id with an index slot (ids at or above
    /// this bound certainly have no occurrences).
    #[inline]
    pub fn max_item_bound(&self) -> u32 {
        self.lists.len() as u32
    }

    /// The sorted TID-positions containing `item` (empty for unseen items).
    #[inline]
    pub fn tids(&self, item: ItemId) -> &[u32] {
        self.lists.get(item.index()).map_or(&[], |v| v.as_slice())
    }

    /// Support (absolute count) of a single item.
    #[inline]
    pub fn support_1(&self, item: ItemId) -> u64 {
        self.tids(item).len() as u64
    }

    /// Support (absolute count) of an itemset: the size of the intersection
    /// of the members' TID lists. Lists are intersected smallest-first so
    /// the running set can only shrink.
    pub fn support(&self, itemset: &[ItemId]) -> u64 {
        match itemset.len() {
            0 => self.num_transactions,
            1 => self.support_1(itemset[0]),
            _ => {
                let mut lists: Vec<&[u32]> = itemset.iter().map(|&i| self.tids(i)).collect();
                lists.sort_by_key(|l| l.len());
                let mut acc: Vec<u32> = lists[0].to_vec();
                for rest in &lists[1..] {
                    intersect_into(&mut acc, rest);
                    if acc.is_empty() {
                        return 0;
                    }
                }
                acc.len() as u64
            }
        }
    }
}

/// Append `pos` unless it is already the last element (items of one
/// transaction are distinct, but with a taxonomy two items can share an
/// ancestor).
#[inline]
fn push_unique(list: &mut Vec<u32>, pos: u32) {
    if list.last() != Some(&pos) {
        list.push(pos);
    }
}

/// A rectangular slab of presence bits: `rows` bit-rows over a window of
/// at most `capacity` transactions, packed into `u64` words row-major.
///
/// This is the unit of per-worker bitmap partitioning: a worker allocates
/// one chunk per transaction block it is dealt (bit offsets are *local*
/// to the block), sets a bit per `(row, transaction)` occurrence, and
/// later answers "how many transactions in this window contain all of
/// these rows" by AND-ing the rows word-wise and popcounting. Chunks from
/// different blocks cover disjoint transactions, so per-chunk counts sum
/// to the whole-pass support — the merge is plain `u64` addition, in any
/// order.
#[derive(Clone, Debug)]
pub struct BitmapChunk {
    bits: Vec<u64>,
    words: usize,
    rows: usize,
}

impl BitmapChunk {
    /// A zeroed chunk of `rows` bit-rows spanning `capacity` transactions.
    pub fn new(rows: usize, capacity: usize) -> Self {
        let words = capacity.div_ceil(64);
        Self {
            bits: vec![0u64; rows * words],
            words,
            rows,
        }
    }

    /// Words per row (the AND loop's trip count).
    #[inline]
    pub fn words_per_row(&self) -> usize {
        self.words
    }

    /// Total `u64` words the chunk holds.
    #[inline]
    pub fn total_words(&self) -> u64 {
        self.bits.len() as u64
    }

    /// Set the presence bit for `row` at local transaction `offset`.
    /// Re-setting a bit is idempotent (a taxonomy mapper can surface the
    /// same category twice per transaction).
    ///
    /// # Panics
    /// Panics when `row` or `offset` is out of bounds.
    #[inline]
    pub fn set(&mut self, row: u32, offset: usize) {
        assert!(offset / 64 < self.words, "offset beyond chunk capacity");
        self.bits[row as usize * self.words + offset / 64] |= 1u64 << (offset % 64);
    }

    /// Transactions in this chunk's window containing *all* of `rows`
    /// (word-wise AND + popcount). An empty `rows` slice counts nothing:
    /// the empty itemset is the caller's special case, not the chunk's.
    pub fn count(&self, rows: &[u32]) -> u64 {
        let Some((&first, rest)) = rows.split_first() else {
            return 0;
        };
        let first = first as usize * self.words;
        let mut ones = 0u64;
        for w in 0..self.words {
            let mut acc = self.bits[first + w];
            for &r in rest {
                if acc == 0 {
                    break;
                }
                acc &= self.bits[r as usize * self.words + w];
            }
            ones += u64::from(acc.count_ones());
        }
        ones
    }

    /// One row's bits OR-ed into another (`dst |= src`), the building move
    /// of category-row unions.
    ///
    /// # Panics
    /// Panics when either row is out of bounds.
    pub fn or_row_into(&mut self, src: u32, dst: u32) {
        assert!(
            (src as usize) < self.rows && (dst as usize) < self.rows,
            "row out of bounds"
        );
        if src == dst {
            return;
        }
        let s = src as usize * self.words;
        let d = dst as usize * self.words;
        for w in 0..self.words {
            self.bits[d + w] |= self.bits[s + w];
        }
    }
}

/// A whole-database vertical bitmap index: one bit-row per item slot,
/// supports by AND + popcount.
///
/// With a taxonomy, every category row is the OR-union of its descendants'
/// rows, computed once after the single build pass — superseding the
/// per-transaction ancestor extension (and the per-query list work) the
/// TID-list index pays.
///
/// ```
/// use negassoc_txdb::{vertical::TidBitmap, TransactionDbBuilder};
/// use negassoc_taxonomy::ItemId;
///
/// let mut b = TransactionDbBuilder::new();
/// b.add([ItemId(1), ItemId(2)]);
/// b.add([ItemId(2)]);
/// let idx = TidBitmap::build(&b.build()).unwrap();
/// assert_eq!(idx.support(&[ItemId(2)]), 2);
/// assert_eq!(idx.support(&[ItemId(1), ItemId(2)]), 1);
/// ```
#[derive(Clone, Debug)]
pub struct TidBitmap {
    chunk: BitmapChunk,
    num_transactions: u64,
}

impl TidBitmap {
    /// Build over the *literal* items of `source` (no taxonomy). One pass.
    pub fn build<S: TransactionSource + ?Sized>(source: &S) -> io::Result<Self> {
        Self::build_inner(source, None)
    }

    /// Build with category rows filled in: after the literal pass, each
    /// item's row is OR-ed into every ancestor's row exactly once, so any
    /// generalized support is a plain AND from then on. One pass.
    pub fn build_generalized<S: TransactionSource + ?Sized>(
        source: &S,
        taxonomy: &Taxonomy,
    ) -> io::Result<Self> {
        Self::build_inner(source, Some(taxonomy))
    }

    fn build_inner<S: TransactionSource + ?Sized>(
        source: &S,
        taxonomy: Option<&Taxonomy>,
    ) -> io::Result<Self> {
        let total = source.count_transactions()?;
        if total > u64::from(u32::MAX) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "TID-bitmap index supports at most u32::MAX transactions",
            ));
        }
        // Row space: every item the taxonomy names, or (flat) every item
        // the data mentions — discovered by growing on the fly below.
        let mut rows = taxonomy.map_or(0, Taxonomy::len);
        let mut chunk = BitmapChunk::new(rows, total as usize);
        let mut pos: usize = 0;
        source.pass(&mut |t| {
            for &item in t.items() {
                let idx = item.index();
                if idx >= rows {
                    chunk = grow_rows(&chunk, idx + 1);
                    rows = idx + 1;
                }
                chunk.set(idx as u32, pos);
            }
            pos += 1;
        })?;
        if let Some(tax) = taxonomy {
            // Category rows: each item ORs its *literal* row into every
            // ancestor, once. Sources must stay literal — a category row
            // is both a union target and, when categories appear
            // literally in the data, a source — so read from a snapshot.
            let literal = chunk.clone();
            for raw in 0..rows as u32 {
                for anc in tax.ancestors(ItemId(raw)) {
                    merge_literal_row(&mut chunk, &literal, raw, anc.index() as u32);
                }
            }
        }
        Ok(Self {
            chunk,
            num_transactions: total,
        })
    }

    /// Number of transactions indexed.
    #[inline]
    pub fn num_transactions(&self) -> u64 {
        self.num_transactions
    }

    /// One past the largest item id with a bit-row.
    #[inline]
    pub fn max_item_bound(&self) -> u32 {
        self.chunk.rows as u32
    }

    /// Total `u64` words the index holds.
    #[inline]
    pub fn total_words(&self) -> u64 {
        self.chunk.total_words()
    }

    /// Support (absolute count) of a single item.
    #[inline]
    pub fn support_1(&self, item: ItemId) -> u64 {
        if item.index() >= self.chunk.rows {
            return 0;
        }
        self.chunk.count(&[item.0])
    }

    /// Support (absolute count) of an itemset by AND + popcount. Matches
    /// [`TidListIndex::support`]: the empty itemset is in every
    /// transaction; unseen items have empty rows.
    pub fn support(&self, itemset: &[ItemId]) -> u64 {
        if itemset.is_empty() {
            return self.num_transactions;
        }
        if itemset.iter().any(|i| i.index() >= self.chunk.rows) {
            return 0;
        }
        let rows: Vec<u32> = itemset.iter().map(|i| i.0).collect();
        self.chunk.count(&rows)
    }
}

/// A copy of `chunk` widened to `rows` bit-rows (existing rows keep their
/// bits; new rows are zero).
fn grow_rows(chunk: &BitmapChunk, rows: usize) -> BitmapChunk {
    let mut wider = BitmapChunk::new(rows, chunk.words * 64);
    let copy = chunk.bits.len().min(wider.bits.len());
    wider.bits[..copy].copy_from_slice(&chunk.bits[..copy]);
    wider
}

/// `chunk.row(dst) |= literal.row(src)` — the category-union step, reading
/// from the immutable literal snapshot.
fn merge_literal_row(chunk: &mut BitmapChunk, literal: &BitmapChunk, src: u32, dst: u32) {
    let s = src as usize * literal.words;
    let d = dst as usize * chunk.words;
    for w in 0..chunk.words {
        chunk.bits[d + w] |= literal.bits[s + w];
    }
}

/// Replace `acc` with `acc ∩ other`; both sorted ascending.
fn intersect_into(acc: &mut Vec<u32>, other: &[u32]) {
    let mut write = 0;
    let mut j = 0;
    for read in 0..acc.len() {
        let v = acc[read];
        // Galloping would pay off for skewed sizes; linear merge is fine at
        // the list sizes the paper's workloads produce.
        while j < other.len() && other[j] < v {
            j += 1;
        }
        if j < other.len() && other[j] == v {
            acc[write] = v;
            write += 1;
            j += 1;
        }
    }
    acc.truncate(write);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TransactionDbBuilder;
    use negassoc_taxonomy::TaxonomyBuilder;

    fn ids(v: &[u32]) -> Vec<ItemId> {
        v.iter().map(|&i| ItemId(i)).collect()
    }

    #[test]
    fn flat_supports() {
        let mut b = TransactionDbBuilder::new();
        b.add(ids(&[0, 1]));
        b.add(ids(&[1, 2]));
        b.add(ids(&[0, 1, 2]));
        let idx = TidListIndex::build(&b.build()).unwrap();

        assert_eq!(idx.num_transactions(), 3);
        assert_eq!(idx.support_1(ItemId(1)), 3);
        assert_eq!(idx.support(&ids(&[0, 1])), 2);
        assert_eq!(idx.support(&ids(&[0, 2])), 1);
        assert_eq!(idx.support(&ids(&[0, 1, 2])), 1);
        assert_eq!(idx.support(&[]), 3);
        assert_eq!(idx.support(&ids(&[7])), 0);
        assert_eq!(idx.tids(ItemId(2)), &[1, 2]);
    }

    #[test]
    fn generalized_supports_count_categories() {
        // cat0 -> {leaf1, leaf2}; transactions use only leaves.
        let mut tb = TaxonomyBuilder::new();
        let cat = tb.add_root("cat");
        let l1 = tb.add_child(cat, "l1").unwrap();
        let l2 = tb.add_child(cat, "l2").unwrap();
        let tax = tb.build();

        let mut b = TransactionDbBuilder::new();
        b.add([l1]);
        b.add([l2]);
        b.add([l1, l2]);
        let idx = TidListIndex::build_generalized(&b.build(), &tax).unwrap();

        // Category appears in all three transactions, but only once each
        // even when both children are present.
        assert_eq!(idx.support_1(cat), 3);
        assert_eq!(idx.support(&[cat, l1]), 2);
        assert_eq!(idx.support_1(l1), 2);
    }

    #[test]
    fn empty_database() {
        let db = TransactionDbBuilder::new().build();
        let idx = TidListIndex::build(&db).unwrap();
        assert_eq!(idx.num_transactions(), 0);
        assert_eq!(idx.support(&ids(&[0])), 0);
        assert_eq!(idx.support(&[]), 0);
    }

    /// The parallel build must reproduce the sequential one exactly —
    /// same lists in the same order — flat and generalized, at any
    /// thread count.
    #[test]
    fn parallel_build_is_byte_identical_to_sequential() {
        let mut tb = TaxonomyBuilder::new();
        let cat = tb.add_root("cat");
        let l1 = tb.add_child(cat, "l1").unwrap();
        let l2 = tb.add_child(cat, "l2").unwrap();
        let tax = tb.build();

        let mut b = TransactionDbBuilder::new();
        for i in 0..500u32 {
            match i % 3 {
                0 => b.add([l1]),
                1 => b.add([l2]),
                _ => b.add([l1, l2]),
            };
        }
        let db = b.build();

        let flat_seq = TidListIndex::build(&db).unwrap();
        let gen_seq = TidListIndex::build_generalized(&db, &tax).unwrap();
        for threads in [1usize, 2, 4, 8] {
            let p = Parallelism::Threads(threads);
            let flat_par = TidListIndex::build_with(&db, None, p).unwrap();
            let gen_par = TidListIndex::build_with(&db, Some(&tax), p).unwrap();
            assert_eq!(flat_par.num_transactions(), flat_seq.num_transactions());
            assert_eq!(flat_par.lists, flat_seq.lists, "flat, {threads} threads");
            assert_eq!(
                gen_par.lists, gen_seq.lists,
                "generalized, {threads} threads"
            );
        }
        // The policy default is the sequential path.
        let via_default = TidListIndex::build_with(&db, None, Parallelism::Sequential).unwrap();
        assert_eq!(via_default.lists, flat_seq.lists);
    }

    #[test]
    fn intersect_into_cases() {
        let mut a = vec![1, 3, 5, 7];
        intersect_into(&mut a, &[3, 4, 7, 9]);
        assert_eq!(a, vec![3, 7]);
        let mut b: Vec<u32> = vec![];
        intersect_into(&mut b, &[1]);
        assert!(b.is_empty());
        let mut c = vec![1, 2];
        intersect_into(&mut c, &[]);
        assert!(c.is_empty());
    }
}
