//! Vertical (TID-list) representation of a transaction database.
//!
//! For every item the index stores the sorted list of transaction positions
//! containing it; the support of an itemset is the size of the intersection
//! of its members' lists. With a taxonomy, a category's list is the union of
//! its descendants' lists, so *generalized* supports fall out of the same
//! intersection. This serves as an alternative counting backend: after the
//! one pass that builds the index, any number of candidate itemsets can be
//! counted without touching the database again.

use crate::block::{parallel_pass, Parallelism, DEFAULT_BLOCK_SIZE};
use crate::scan::TransactionSource;
use negassoc_taxonomy::{ItemId, Taxonomy};
use std::io;

/// An inverted index from item to the sorted TID-positions containing it.
///
/// ```
/// use negassoc_txdb::{vertical::TidListIndex, TransactionDbBuilder};
/// use negassoc_taxonomy::ItemId;
///
/// let mut b = TransactionDbBuilder::new();
/// b.add([ItemId(1), ItemId(2)]);
/// b.add([ItemId(2)]);
/// let idx = TidListIndex::build(&b.build()).unwrap();
/// assert_eq!(idx.support(&[ItemId(2)]), 2);
/// assert_eq!(idx.support(&[ItemId(1), ItemId(2)]), 1);
/// ```
#[derive(Clone, Debug)]
pub struct TidListIndex {
    lists: Vec<Vec<u32>>,
    num_transactions: u64,
}

impl TidListIndex {
    /// Build an index over the *literal* items of `source` (no taxonomy).
    /// Costs one pass.
    pub fn build<S: TransactionSource>(source: &S) -> io::Result<Self> {
        Self::build_inner(source, None)
    }

    /// Build an index in which every transaction is extended with the
    /// ancestors of its items, so category supports are directly queryable.
    /// Costs one pass.
    pub fn build_generalized<S: TransactionSource>(
        source: &S,
        taxonomy: &Taxonomy,
    ) -> io::Result<Self> {
        Self::build_inner(source, Some(taxonomy))
    }

    /// [`Self::build`] / [`Self::build_generalized`] with a worker pool:
    /// each worker indexes whole transaction blocks (absolute positions,
    /// so lists from different blocks never interleave) and the blocks are
    /// merged back in stream order. The result is identical to the
    /// sequential build — same lists, same order — for any thread count,
    /// including over streamed sources.
    pub fn build_with<S: TransactionSource + ?Sized>(
        source: &S,
        taxonomy: Option<&Taxonomy>,
        parallelism: Parallelism,
    ) -> io::Result<Self> {
        let threads = parallelism.resolve();
        if threads <= 1 {
            return Self::build_inner(source, taxonomy);
        }
        // Worker state: (block start, per-item positions) per block seen,
        // plus an overflow marker for positions beyond u32.
        type BlockLists = (u64, Vec<Vec<u32>>);
        let seed_len = taxonomy.map_or(0, Taxonomy::len);
        let (parts, total) = parallel_pass(
            source,
            threads,
            DEFAULT_BLOCK_SIZE,
            || (Vec::<BlockLists>::new(), false),
            |(blocks, overflow), block| {
                let mut lists: Vec<Vec<u32>> = vec![Vec::new(); seed_len];
                for (i, t) in block.iter().enumerate() {
                    let Ok(pos) = u32::try_from(block.start() + i as u64) else {
                        *overflow = true;
                        return;
                    };
                    for &item in t.items() {
                        let idx = item.index();
                        if idx >= lists.len() {
                            lists.resize_with(idx + 1, Vec::new);
                        }
                        push_unique(&mut lists[idx], pos);
                        if let Some(tax) = taxonomy {
                            for anc in tax.ancestors(item) {
                                push_unique(&mut lists[anc.index()], pos);
                            }
                        }
                    }
                }
                blocks.push((block.start(), lists));
            },
            |state| state,
        )?;
        if total > u64::from(u32::MAX) || parts.iter().any(|(_, overflow)| *overflow) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "TID-list index supports at most u32::MAX transactions",
            ));
        }
        // Stitch the blocks back together in stream order. Positions are
        // absolute and blocks are disjoint, so per-item concatenation in
        // block order reproduces the sequential build's sorted lists.
        let mut blocks: Vec<BlockLists> =
            parts.into_iter().flat_map(|(blocks, _)| blocks).collect();
        blocks.sort_unstable_by_key(|(start, _)| *start);
        let mut lists: Vec<Vec<u32>> = vec![Vec::new(); seed_len];
        for (_, block_lists) in blocks {
            if block_lists.len() > lists.len() {
                lists.resize_with(block_lists.len(), Vec::new);
            }
            for (idx, mut positions) in block_lists.into_iter().enumerate() {
                if !positions.is_empty() {
                    lists[idx].append(&mut positions);
                }
            }
        }
        Ok(Self {
            lists,
            num_transactions: total,
        })
    }

    fn build_inner<S: TransactionSource + ?Sized>(
        source: &S,
        taxonomy: Option<&Taxonomy>,
    ) -> io::Result<Self> {
        let mut lists: Vec<Vec<u32>> = match taxonomy {
            Some(t) => vec![Vec::new(); t.len()],
            None => Vec::new(),
        };
        let mut pos: u32 = 0;
        let mut overflow = false;
        source.pass(&mut |t| {
            if overflow {
                return;
            }
            for &item in t.items() {
                let idx = item.index();
                if idx >= lists.len() {
                    lists.resize_with(idx + 1, Vec::new);
                }
                push_unique(&mut lists[idx], pos);
                if let Some(tax) = taxonomy {
                    for anc in tax.ancestors(item) {
                        push_unique(&mut lists[anc.index()], pos);
                    }
                }
            }
            pos = match pos.checked_add(1) {
                Some(p) => p,
                None => {
                    overflow = true;
                    pos
                }
            };
        })?;
        if overflow {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "TID-list index supports at most u32::MAX transactions",
            ));
        }
        Ok(Self {
            lists,
            num_transactions: u64::from(pos),
        })
    }

    /// Number of transactions indexed.
    #[inline]
    pub fn num_transactions(&self) -> u64 {
        self.num_transactions
    }

    /// One past the largest item id with an index slot (ids at or above
    /// this bound certainly have no occurrences).
    #[inline]
    pub fn max_item_bound(&self) -> u32 {
        self.lists.len() as u32
    }

    /// The sorted TID-positions containing `item` (empty for unseen items).
    #[inline]
    pub fn tids(&self, item: ItemId) -> &[u32] {
        self.lists.get(item.index()).map_or(&[], |v| v.as_slice())
    }

    /// Support (absolute count) of a single item.
    #[inline]
    pub fn support_1(&self, item: ItemId) -> u64 {
        self.tids(item).len() as u64
    }

    /// Support (absolute count) of an itemset: the size of the intersection
    /// of the members' TID lists. Lists are intersected smallest-first so
    /// the running set can only shrink.
    pub fn support(&self, itemset: &[ItemId]) -> u64 {
        match itemset.len() {
            0 => self.num_transactions,
            1 => self.support_1(itemset[0]),
            _ => {
                let mut lists: Vec<&[u32]> = itemset.iter().map(|&i| self.tids(i)).collect();
                lists.sort_by_key(|l| l.len());
                let mut acc: Vec<u32> = lists[0].to_vec();
                for rest in &lists[1..] {
                    intersect_into(&mut acc, rest);
                    if acc.is_empty() {
                        return 0;
                    }
                }
                acc.len() as u64
            }
        }
    }
}

/// Append `pos` unless it is already the last element (items of one
/// transaction are distinct, but with a taxonomy two items can share an
/// ancestor).
#[inline]
fn push_unique(list: &mut Vec<u32>, pos: u32) {
    if list.last() != Some(&pos) {
        list.push(pos);
    }
}

/// Replace `acc` with `acc ∩ other`; both sorted ascending.
fn intersect_into(acc: &mut Vec<u32>, other: &[u32]) {
    let mut write = 0;
    let mut j = 0;
    for read in 0..acc.len() {
        let v = acc[read];
        // Galloping would pay off for skewed sizes; linear merge is fine at
        // the list sizes the paper's workloads produce.
        while j < other.len() && other[j] < v {
            j += 1;
        }
        if j < other.len() && other[j] == v {
            acc[write] = v;
            write += 1;
            j += 1;
        }
    }
    acc.truncate(write);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TransactionDbBuilder;
    use negassoc_taxonomy::TaxonomyBuilder;

    fn ids(v: &[u32]) -> Vec<ItemId> {
        v.iter().map(|&i| ItemId(i)).collect()
    }

    #[test]
    fn flat_supports() {
        let mut b = TransactionDbBuilder::new();
        b.add(ids(&[0, 1]));
        b.add(ids(&[1, 2]));
        b.add(ids(&[0, 1, 2]));
        let idx = TidListIndex::build(&b.build()).unwrap();

        assert_eq!(idx.num_transactions(), 3);
        assert_eq!(idx.support_1(ItemId(1)), 3);
        assert_eq!(idx.support(&ids(&[0, 1])), 2);
        assert_eq!(idx.support(&ids(&[0, 2])), 1);
        assert_eq!(idx.support(&ids(&[0, 1, 2])), 1);
        assert_eq!(idx.support(&[]), 3);
        assert_eq!(idx.support(&ids(&[7])), 0);
        assert_eq!(idx.tids(ItemId(2)), &[1, 2]);
    }

    #[test]
    fn generalized_supports_count_categories() {
        // cat0 -> {leaf1, leaf2}; transactions use only leaves.
        let mut tb = TaxonomyBuilder::new();
        let cat = tb.add_root("cat");
        let l1 = tb.add_child(cat, "l1").unwrap();
        let l2 = tb.add_child(cat, "l2").unwrap();
        let tax = tb.build();

        let mut b = TransactionDbBuilder::new();
        b.add([l1]);
        b.add([l2]);
        b.add([l1, l2]);
        let idx = TidListIndex::build_generalized(&b.build(), &tax).unwrap();

        // Category appears in all three transactions, but only once each
        // even when both children are present.
        assert_eq!(idx.support_1(cat), 3);
        assert_eq!(idx.support(&[cat, l1]), 2);
        assert_eq!(idx.support_1(l1), 2);
    }

    #[test]
    fn empty_database() {
        let db = TransactionDbBuilder::new().build();
        let idx = TidListIndex::build(&db).unwrap();
        assert_eq!(idx.num_transactions(), 0);
        assert_eq!(idx.support(&ids(&[0])), 0);
        assert_eq!(idx.support(&[]), 0);
    }

    /// The parallel build must reproduce the sequential one exactly —
    /// same lists in the same order — flat and generalized, at any
    /// thread count.
    #[test]
    fn parallel_build_is_byte_identical_to_sequential() {
        let mut tb = TaxonomyBuilder::new();
        let cat = tb.add_root("cat");
        let l1 = tb.add_child(cat, "l1").unwrap();
        let l2 = tb.add_child(cat, "l2").unwrap();
        let tax = tb.build();

        let mut b = TransactionDbBuilder::new();
        for i in 0..500u32 {
            match i % 3 {
                0 => b.add([l1]),
                1 => b.add([l2]),
                _ => b.add([l1, l2]),
            };
        }
        let db = b.build();

        let flat_seq = TidListIndex::build(&db).unwrap();
        let gen_seq = TidListIndex::build_generalized(&db, &tax).unwrap();
        for threads in [1usize, 2, 4, 8] {
            let p = Parallelism::Threads(threads);
            let flat_par = TidListIndex::build_with(&db, None, p).unwrap();
            let gen_par = TidListIndex::build_with(&db, Some(&tax), p).unwrap();
            assert_eq!(flat_par.num_transactions(), flat_seq.num_transactions());
            assert_eq!(flat_par.lists, flat_seq.lists, "flat, {threads} threads");
            assert_eq!(
                gen_par.lists, gen_seq.lists,
                "generalized, {threads} threads"
            );
        }
        // The policy default is the sequential path.
        let via_default = TidListIndex::build_with(&db, None, Parallelism::Sequential).unwrap();
        assert_eq!(via_default.lists, flat_seq.lists);
    }

    #[test]
    fn intersect_into_cases() {
        let mut a = vec![1, 3, 5, 7];
        intersect_into(&mut a, &[3, 4, 7, 9]);
        assert_eq!(a, vec![3, 7]);
        let mut b: Vec<u32> = vec![];
        intersect_into(&mut b, &[1]);
        assert!(b.is_empty());
        let mut c = vec![1, 2];
        intersect_into(&mut c, &[]);
        assert!(c.is_empty());
    }
}
