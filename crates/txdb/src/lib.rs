//! Transaction database substrate for the negative-association miner.
//!
//! The mining algorithms of the paper are expressed as a sequence of *passes*
//! over a database of customer transactions `⟨TID, i_j, i_k, …, i_n⟩`. This
//! crate provides everything those passes need:
//!
//! * [`TransactionDb`] — a compact in-memory store (flat item array +
//!   offsets) built via [`TransactionDbBuilder`],
//! * [`Transaction`] — a borrowed view of one basket (TID + sorted items),
//! * [`TransactionSource`] — the pass abstraction shared by in-memory and
//!   on-disk databases, plus [`PassCounter`] so tests and benchmarks can
//!   verify the paper's `2n` vs `n + 1` pass counts,
//! * [`binfmt`] / [`textfmt`] — a varint-compressed, per-block CRC-32
//!   checksummed binary file format (strict and salvage reads) and a
//!   human-readable text format, both streamable,
//! * [`crc32`] / [`fault`] — the vendored checksum plus deterministic
//!   fault injection ([`fault::FaultySource`], [`fault::FaultyReader`])
//!   and bounded retry ([`fault::RetryPolicy`], [`fault::RetryingSource`])
//!   so the multi-pass miners survive transient I/O failures,
//! * [`block`] — fixed-size transaction blocks plus the scoped worker-pool
//!   pass executor ([`block::parallel_pass`]) and the [`Parallelism`]
//!   policy behind every multi-threaded counting pass,
//! * [`ctrl`] — cooperative run control: the lock-free
//!   [`ctrl::CancelToken`] checked at block/pass boundaries, wall-clock
//!   [`ctrl::Deadline`]s and the [`ctrl::Watchdog`] stall monitor,
//! * [`obs`] — the observability substrate: structured [`obs::Event`]
//!   trace records, the sharded [`obs::Metrics`] registry and pluggable
//!   [`obs::TraceSink`]s behind the cheap [`obs::Obs`] handle,
//! * [`partition`] — horizontal partitioning for memory-bounded or parallel
//!   counting,
//! * [`shard`] — sharded on-disk databases behind a checksummed manifest:
//!   [`shard::ShardedSource`] streams shards one at a time with bounded
//!   memory, and each shard is its own fault domain (retry → salvage →
//!   [`shard::ShardQuarantine`]) so one corrupt shard degrades the run
//!   instead of killing it,
//! * [`vertical`] — TID-list (inverted) indexes with intersection-based
//!   support counting, used as an alternative counting backend.
//!
//! # Example
//!
//! ```
//! use negassoc_txdb::{TransactionDbBuilder, TransactionSource};
//! use negassoc_taxonomy::ItemId;
//!
//! let mut b = TransactionDbBuilder::new();
//! b.add([ItemId(0), ItemId(2)]);
//! b.add([ItemId(1), ItemId(2), ItemId(0)]);
//! let db = b.build();
//!
//! assert_eq!(db.len(), 2);
//! let mut total_items = 0;
//! db.pass(&mut |t| total_items += t.items().len()).unwrap();
//! assert_eq!(total_items, 5);
//! ```

pub mod binfmt;
pub mod block;
pub mod crc32;
pub mod ctrl;
pub mod fault;
pub mod obs;
pub mod partition;
pub mod shard;
pub mod stats;
pub mod textfmt;
pub mod throttle;
pub mod vertical;

mod database;
mod scan;
mod transaction;

pub use block::Parallelism;
pub use database::{TransactionDb, TransactionDbBuilder};
pub use scan::{PassCounter, TransactionSource};
pub use transaction::Transaction;
