//! Vendored, dependency-free CRC-32 (IEEE 802.3, the zlib/gzip
//! polynomial `0xEDB88320`), used to checksum NADB v2 blocks and mining
//! checkpoints.
//!
//! Like the workspace's vendored `rand`/`proptest` stubs, this exists
//! because the build environment has no registry access; the
//! implementation is the classic byte-at-a-time table walk, verified
//! against the published check value `crc32("123456789") ==
//! 0xCBF43926`.

/// The reflected IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

/// The 256-entry lookup table, built at compile time.
const TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut n = 0usize;
    while n < 256 {
        let mut c = n as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { POLY ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[n] = c;
        n += 1;
    }
    table
}

/// A streaming CRC-32 hasher.
///
/// ```
/// use negassoc_txdb::crc32::{crc32, Hasher};
///
/// let mut h = Hasher::new();
/// h.update(b"1234");
/// h.update(b"56789");
/// assert_eq!(h.finalize(), 0xCBF4_3926);
/// assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
/// ```
#[derive(Clone, Debug)]
pub struct Hasher {
    state: u32,
}

impl Hasher {
    /// A fresh hasher.
    pub fn new() -> Self {
        Self { state: 0xFFFF_FFFF }
    }

    /// Feed `bytes` into the checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut c = self.state;
        for &b in bytes {
            c = TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
        }
        self.state = c;
    }

    /// The checksum of everything fed so far.
    pub fn finalize(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

impl Default for Hasher {
    fn default() -> Self {
        Self::new()
    }
}

/// One-shot checksum of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut h = Hasher::new();
    h.update(bytes);
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn published_check_value() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn empty_input() {
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn streaming_matches_one_shot() {
        let data: Vec<u8> = (0u16..1024).map(|i| (i % 251) as u8).collect();
        let mut h = Hasher::default();
        for chunk in data.chunks(7) {
            h.update(chunk);
        }
        assert_eq!(h.finalize(), crc32(&data));
    }

    #[test]
    fn single_bit_flip_changes_the_sum() {
        let mut data = vec![0u8; 64];
        let base = crc32(&data);
        for byte in 0..64 {
            for bit in 0..8 {
                data[byte] ^= 1 << bit;
                assert_ne!(crc32(&data), base, "flip at {byte}:{bit} undetected");
                data[byte] ^= 1 << bit;
            }
        }
    }
}
