//! An I/O-throughput simulation wrapper.
//!
//! The paper's evaluation ran on a Sun SPARCstation 5 whose 50,000
//! transactions lived on a mid-90s disk (~3–5 MB/s sequential), so every
//! database *pass* carried a fixed multi-second I/O cost — that is what
//! makes the improved algorithm's `n + 1` passes beat the naive `2n`. On a
//! modern machine the same file streams from page cache in milliseconds
//! and the effect disappears into noise. [`ThrottledSource`] reintroduces
//! the paper's cost regime: each pass sleeps in proportion to the
//! database's serialized size over a configurable bandwidth, spread over
//! the scan in slices so timing interleaves realistically.
//!
//! This is a *simulation of unavailable hardware* (see DESIGN.md,
//! "Substitutions"); use it only in the benchmark harness.

use crate::scan::TransactionSource;
use crate::transaction::Transaction;
use std::io;
use std::time::Duration;

/// Approximate sequential throughput of the paper's era of disk.
pub const DISK_1995_BYTES_PER_SEC: f64 = 4.0 * 1024.0 * 1024.0;

/// Wraps a source so every pass costs `serialized size / bandwidth`
/// seconds of simulated I/O on top of the real work.
pub struct ThrottledSource<S> {
    inner: S,
    bytes_per_sec: f64,
    estimated_bytes: u64,
    transactions: u64,
}

impl<S: TransactionSource> ThrottledSource<S> {
    /// Wrap `inner`, estimating its serialized size with one (unthrottled)
    /// pass: roughly two varint bytes per item plus a few per transaction,
    /// matching the `binfmt` encoding.
    ///
    /// The bandwidth must be positive and finite; anything else (zero,
    /// negative, NaN, infinite) is an [`io::ErrorKind::InvalidInput`]
    /// error rather than a panic — this is library code and the value
    /// typically arrives from a CLI flag.
    pub fn new(inner: S, bytes_per_sec: f64) -> io::Result<Self> {
        if !(bytes_per_sec > 0.0 && bytes_per_sec.is_finite()) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("throttle bandwidth must be positive and finite, got {bytes_per_sec}"),
            ));
        }
        let mut items = 0u64;
        let mut transactions = 0u64;
        inner.pass(&mut |t| {
            items += t.len() as u64;
            transactions += 1;
        })?;
        let estimated_bytes = items * 2 + transactions * 3;
        Ok(Self {
            inner,
            bytes_per_sec,
            estimated_bytes,
            transactions,
        })
    }

    /// The per-pass simulated I/O time.
    pub fn pass_cost(&self) -> Duration {
        Duration::from_secs_f64(self.estimated_bytes as f64 / self.bytes_per_sec)
    }

    /// The wrapped source.
    pub fn inner(&self) -> &S {
        &self.inner
    }
}

impl<S: TransactionSource> TransactionSource for ThrottledSource<S> {
    fn pass(&self, f: &mut dyn FnMut(Transaction<'_>)) -> io::Result<()> {
        // Spread the sleep over ~64 slices of the scan so the simulated
        // I/O interleaves with the real counting work instead of front-
        // loading it.
        let slices = 64u64;
        let slice_every = (self.transactions / slices).max(1);
        let slice_sleep = self.pass_cost() / (slices as u32).max(1);
        let mut seen = 0u64;
        self.inner.pass(&mut |t| {
            seen += 1;
            if seen % slice_every == 0 {
                std::thread::sleep(slice_sleep);
            }
            f(t);
        })?;
        Ok(())
    }

    fn len_hint(&self) -> Option<u64> {
        Some(self.transactions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TransactionDbBuilder;
    use negassoc_taxonomy::ItemId;
    use std::time::Instant;

    fn db(n: usize) -> crate::TransactionDb {
        let mut b = TransactionDbBuilder::new();
        for i in 0..n {
            b.add([ItemId(i as u32 % 10), ItemId(10 + i as u32 % 7)]);
        }
        b.build()
    }

    #[test]
    fn passes_are_slowed_but_content_is_identical() {
        let plain = db(2000);
        // 2000 tx * (2 items * 2 + 3) bytes = 14,000 bytes; at 100 KB/s a
        // pass costs ~140 ms.
        let throttled = ThrottledSource::new(db(2000), 100.0 * 1024.0).unwrap();
        assert!(throttled.pass_cost() >= Duration::from_millis(100));
        assert_eq!(throttled.len_hint(), Some(2000));

        let mut plain_items = 0usize;
        plain.pass(&mut |t| plain_items += t.len()).unwrap();
        let mut throttled_items = 0usize;
        let start = Instant::now();
        throttled.pass(&mut |t| throttled_items += t.len()).unwrap();
        let elapsed = start.elapsed();
        assert_eq!(plain_items, throttled_items);
        assert!(
            elapsed >= throttled.pass_cost() / 2,
            "pass returned too quickly: {elapsed:?}"
        );
        assert_eq!(throttled.inner().len(), 2000);
    }

    #[test]
    fn zero_transactions_cost_nothing() {
        let throttled = ThrottledSource::new(TransactionDbBuilder::new().build(), 1024.0).unwrap();
        assert_eq!(throttled.pass_cost(), Duration::ZERO);
        let mut n = 0;
        throttled.pass(&mut |_| n += 1).unwrap();
        assert_eq!(n, 0);
    }

    #[test]
    fn rejects_nonfinite_or_nonpositive_bandwidth_without_panicking() {
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let err = match ThrottledSource::new(db(1), bad) {
                Err(e) => e,
                Ok(_) => panic!("bandwidth {bad} must be rejected"),
            };
            assert_eq!(err.kind(), io::ErrorKind::InvalidInput, "bandwidth {bad}");
            assert!(
                err.to_string().contains("bandwidth must be positive"),
                "bandwidth {bad}: {err}"
            );
        }
    }
}
