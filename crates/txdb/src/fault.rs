//! Deterministic fault injection and bounded retry for database passes.
//!
//! The paper's algorithms are disk-resident: one full scan of the
//! transaction file per itemset level, so a single transient I/O error
//! mid-pass would otherwise throw away the whole run. This module provides
//! the two halves of the fault story:
//!
//! * **Injection** — [`FaultySource`] wraps any [`TransactionSource`] and
//!   fires a [`FaultPlan`]'s faults (I/O errors, truncation, slow reads,
//!   bit flips) at exact `(pass, transaction)` points; [`FaultyReader`]
//!   does the same at byte offsets under any `Read`. Plans are either
//!   hand-written or derived deterministically from a seed, so every
//!   failure a test provokes is replayable.
//! * **Healing** — [`RetryPolicy`] + [`RetryingSource`] re-run a failed
//!   pass with bounded exponential backoff, skipping the already-delivered
//!   prefix so the observer sees every transaction **exactly once** even
//!   across retries (passes deliver in a stable order, which makes the
//!   skip-prefix resume sound). Permanent faults — checksum mismatches,
//!   decode errors — are never retried: rereading corrupt bytes cannot
//!   heal them.
//!
//! [`crate::binfmt::FileSource::with_retry`] applies the same policy
//! directly at the file layer.

use crate::binfmt::CorruptBlock;
use crate::obs::{metric, Event, Obs};
use crate::scan::TransactionSource;
use crate::transaction::Transaction;
use negassoc_taxonomy::ItemId;
use std::cell::{Cell, RefCell};
use std::io::{self, Read};
use std::time::Duration;

/// Bounded retry with exponential backoff.
///
/// Attempt `n` (0-based) sleeps `base_delay << n`, capped at
/// [`RetryPolicy::MAX_SLEEP`]. The default is 3 retries from 5 ms — a
/// worst case of ~35 ms of waiting, enough for page-cache hiccups and
/// NFS-style transient failures without stalling a mining run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries after the first failure (0 = fail immediately).
    pub max_retries: u32,
    /// Sleep before the first retry; doubles per attempt.
    pub base_delay: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_retries: 3,
            base_delay: Duration::from_millis(5),
        }
    }
}

impl RetryPolicy {
    /// Upper bound on a single backoff sleep.
    pub const MAX_SLEEP: Duration = Duration::from_secs(2);

    /// A policy with `max_retries` retries starting at `base_delay`.
    pub fn new(max_retries: u32, base_delay: Duration) -> Self {
        Self {
            max_retries,
            base_delay,
        }
    }

    /// Sleep for attempt `attempt` (0-based), exponential and capped.
    pub fn sleep(&self, attempt: u32) {
        let exp = self.base_delay.saturating_mul(1u32 << attempt.min(16));
        let nap = exp.min(Self::MAX_SLEEP);
        if !nap.is_zero() {
            std::thread::sleep(nap);
        }
    }
}

/// `true` for error classes a reread can plausibly heal. Data corruption
/// (a [`CorruptBlock`] payload, `InvalidData` decode failures) is
/// permanent by definition and excluded.
pub fn is_transient(e: &io::Error) -> bool {
    if e.get_ref()
        .is_some_and(|inner| inner.downcast_ref::<CorruptBlock>().is_some())
    {
        return false;
    }
    !matches!(
        e.kind(),
        io::ErrorKind::InvalidData | io::ErrorKind::NotFound | io::ErrorKind::PermissionDenied
    )
}

/// What a [`FaultySource`] does when a fault point is reached.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SourceFaultKind {
    /// Abort the pass with a *transient* I/O error (`ErrorKind::Other`);
    /// a retry heals it because the pass counter has moved on.
    TransientError,
    /// Abort the pass with a *permanent* error (`ErrorKind::InvalidData`);
    /// retry policies refuse to retry it.
    PermanentError,
    /// Deliver the prefix before the fault point, then fail as a
    /// truncated read (`ErrorKind::UnexpectedEof`, transient — a retry
    /// resumes past it).
    Truncate,
    /// Sleep this long at the fault point, then continue (latency fault).
    Slow(Duration),
    /// Deliver the transaction at the fault point with one item's bit
    /// flipped — an *undetected* upstream corruption, for testing that
    /// downstream checksums/audits catch it.
    FlipItemBit {
        /// Which bit of the first item id to flip.
        bit: u8,
    },
}

/// One fault at an exact `(pass, transaction)` point.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SourceFault {
    /// 0-based index of the pass (each call of [`TransactionSource::pass`]
    /// on the wrapper counts, including retries) at which to fire.
    pub pass: u64,
    /// 0-based transaction offset within that pass.
    pub at_transaction: u64,
    /// What happens there.
    pub kind: SourceFaultKind,
}

/// A deterministic, replayable set of faults.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    faults: Vec<SourceFault>,
}

/// splitmix64 — the tiny deterministic generator behind seeded plans (no
/// dependency on the vendored `rand`, which is dev-only here).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl FaultPlan {
    /// An explicit plan.
    pub fn new(faults: Vec<SourceFault>) -> Self {
        Self { faults }
    }

    /// A plan with no faults.
    pub fn none() -> Self {
        Self::default()
    }

    /// `n_faults` *transient* faults (errors and truncations) at
    /// seed-determined points within the first `passes` passes of a
    /// database of `transactions` transactions. The same seed always
    /// yields the same plan.
    pub fn seeded_transient(seed: u64, passes: u64, transactions: u64, n_faults: usize) -> Self {
        let mut state = seed ^ 0xD6E8_FEB8_6659_FD93;
        let faults = (0..n_faults)
            .map(|_| {
                let pass = splitmix64(&mut state) % passes.max(1);
                let at_transaction = splitmix64(&mut state) % transactions.max(1);
                let kind = if splitmix64(&mut state) % 2 == 0 {
                    SourceFaultKind::TransientError
                } else {
                    SourceFaultKind::Truncate
                };
                SourceFault {
                    pass,
                    at_transaction,
                    kind,
                }
            })
            .collect();
        Self { faults }
    }

    /// The plan's faults.
    pub fn faults(&self) -> &[SourceFault] {
        &self.faults
    }

    /// Number of faults in the plan.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// `true` when the plan is empty.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }
}

/// An injected-fault error message prefix (tests match on it).
pub const INJECTED: &str = "injected fault";

/// Wraps a [`TransactionSource`] and fires a [`FaultPlan`].
///
/// Pass numbering counts every call of `pass` on this wrapper, so a retry
/// of pass `p` runs as pass `p + 1` — which is exactly how a transient
/// fault "heals" on reread.
pub struct FaultySource<S> {
    inner: S,
    plan: FaultPlan,
    pass_no: Cell<u64>,
    obs: Obs,
}

impl<S: TransactionSource> FaultySource<S> {
    /// Wrap `inner` under `plan`.
    pub fn new(inner: S, plan: FaultPlan) -> Self {
        Self {
            inner,
            plan,
            pass_no: Cell::new(0),
            obs: Obs::disabled(),
        }
    }

    /// Attach an observer: every fault that fires is reported as an
    /// [`Event::FaultHit`] and counted under `faults.injected`.
    pub fn with_obs(mut self, obs: Obs) -> Self {
        self.obs = obs;
        self
    }

    /// Passes attempted so far (including failed ones).
    pub fn passes_attempted(&self) -> u64 {
        self.pass_no.get()
    }

    /// The wrapped source.
    pub fn inner(&self) -> &S {
        &self.inner
    }
}

impl<S: TransactionSource> TransactionSource for FaultySource<S> {
    fn pass(&self, f: &mut dyn FnMut(Transaction<'_>)) -> io::Result<()> {
        let pass = self.pass_no.get();
        self.pass_no.set(pass + 1);
        let mut offset = 0u64;
        let mut pending: Option<io::Error> = None;
        let mut flipped: Vec<ItemId> = Vec::new();
        let inner_result = self.inner.pass(&mut |t| {
            if pending.is_some() {
                return; // already failed; swallow the rest of the pass
            }
            let at = offset;
            offset += 1;
            for fault in &self.plan.faults {
                if fault.pass != pass || fault.at_transaction != at {
                    continue;
                }
                self.obs.emit(|| Event::FaultHit {
                    pass,
                    transaction: at,
                    kind: format!("{:?}", fault.kind),
                    transient: !matches!(fault.kind, SourceFaultKind::PermanentError),
                });
                self.obs.bump(metric::FAULTS_INJECTED, 1);
                match fault.kind {
                    SourceFaultKind::TransientError => {
                        // negassoc-lint: allow(L012) -- fault-trigger path; fires at most once per pass, then the scan is swallowed
                        pending = Some(io::Error::other(format!(
                            "{INJECTED}: transient error at pass {pass}, transaction {at}"
                        )));
                        return;
                    }
                    SourceFaultKind::PermanentError => {
                        pending = Some(io::Error::new(
                            io::ErrorKind::InvalidData,
                            // negassoc-lint: allow(L012) -- fault-trigger path; fires at most once per pass, then the scan is swallowed
                            format!("{INJECTED}: permanent error at pass {pass}, transaction {at}"),
                        ));
                        return;
                    }
                    SourceFaultKind::Truncate => {
                        pending = Some(io::Error::new(
                            io::ErrorKind::UnexpectedEof,
                            // negassoc-lint: allow(L012) -- fault-trigger path; fires at most once per pass, then the scan is swallowed
                            format!("{INJECTED}: truncated at pass {pass}, transaction {at}"),
                        ));
                        return;
                    }
                    SourceFaultKind::Slow(d) => std::thread::sleep(d),
                    SourceFaultKind::FlipItemBit { bit } => {
                        flipped.clear();
                        flipped.extend_from_slice(t.items());
                        if let Some(first) = flipped.first_mut() {
                            *first = ItemId(first.0 ^ (1u32 << (bit % 32)));
                        }
                        flipped.sort_unstable();
                        flipped.dedup();
                        f(Transaction::new(t.tid(), &flipped));
                        return;
                    }
                }
            }
            f(t);
        });
        inner_result?;
        match pending {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    fn len_hint(&self) -> Option<u64> {
        self.inner.len_hint()
    }
}

/// Retries failed passes of any [`TransactionSource`] under a
/// [`RetryPolicy`], with exactly-once delivery across retries (the
/// already-delivered prefix of a stable-order pass is skipped on resume).
pub struct RetryingSource<S> {
    inner: S,
    policy: RetryPolicy,
    retries_used: Cell<u64>,
    obs: Obs,
}

impl<S: TransactionSource> RetryingSource<S> {
    /// Wrap `inner` under `policy`.
    pub fn new(inner: S, policy: RetryPolicy) -> Self {
        Self {
            inner,
            policy,
            retries_used: Cell::new(0),
            obs: Obs::disabled(),
        }
    }

    /// Attach an observer: every retry is reported as an [`Event::Retry`]
    /// and counted under `retries`.
    pub fn with_obs(mut self, obs: Obs) -> Self {
        self.obs = obs;
        self
    }

    /// Total retries performed across all passes so far.
    pub fn retries_used(&self) -> u64 {
        self.retries_used.get()
    }

    /// The wrapped source.
    pub fn inner(&self) -> &S {
        &self.inner
    }
}

impl<S: TransactionSource> TransactionSource for RetryingSource<S> {
    fn pass(&self, f: &mut dyn FnMut(Transaction<'_>)) -> io::Result<()> {
        let mut delivered = 0u64;
        let mut attempt = 0u32;
        loop {
            let mut seen = 0u64;
            let result = self.inner.pass(&mut |t| {
                seen += 1;
                if seen > delivered {
                    delivered = seen;
                    f(t);
                }
            });
            match result {
                Ok(()) => return Ok(()),
                Err(e) if attempt < self.policy.max_retries && is_transient(&e) => {
                    self.policy.sleep(attempt);
                    attempt += 1;
                    self.obs.emit(|| Event::Retry {
                        attempt: u64::from(attempt),
                        max: u64::from(self.policy.max_retries),
                        error: e.to_string(),
                    });
                    self.obs.bump(metric::RETRIES, 1);
                    self.retries_used.set(self.retries_used.get() + 1);
                }
                Err(e) => return Err(e),
            }
        }
    }

    fn len_hint(&self) -> Option<u64> {
        self.inner.len_hint()
    }
}

/// What a [`FaultyReader`] does when its byte offset is reached.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReadFaultKind {
    /// XOR this mask into the byte at the fault offset.
    FlipBits(u8),
    /// End the stream at the fault offset (reads return 0 from there on).
    Truncate,
    /// Fail the read that would cross the fault offset with a transient
    /// error, once; subsequent reads proceed.
    TransientError,
    /// Sleep this long when the offset is crossed, then continue.
    Slow(Duration),
}

/// One byte-level fault.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReadFault {
    /// Byte offset at which to fire.
    pub offset: u64,
    /// What happens there.
    pub kind: ReadFaultKind,
}

/// Byte-level fault injection under any [`Read`], for exercising format
/// parsers against flipped bits, truncation and transient errors.
pub struct FaultyReader<R> {
    inner: R,
    faults: Vec<ReadFault>,
    fired: RefCell<Vec<bool>>,
    pos: Cell<u64>,
    truncated: Cell<bool>,
}

impl<R: Read> FaultyReader<R> {
    /// Wrap `inner` with byte-offset `faults`.
    pub fn new(inner: R, faults: Vec<ReadFault>) -> Self {
        let fired = RefCell::new(vec![false; faults.len()]);
        Self {
            inner,
            faults,
            fired,
            pos: Cell::new(0),
            truncated: Cell::new(false),
        }
    }
}

impl<R: Read> Read for FaultyReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if self.truncated.get() {
            return Ok(0);
        }
        let start = self.pos.get();
        // Bound this read so a Truncate fault lands exactly on its offset.
        let mut limit = buf.len();
        for fault in &self.faults {
            if fault.kind == ReadFaultKind::Truncate && fault.offset >= start {
                limit = limit.min((fault.offset - start) as usize);
            }
        }
        if limit == 0 && buf.is_empty() {
            return Ok(0);
        }
        if limit == 0 {
            // The very next byte is a truncation point.
            self.truncated.set(true);
            return Ok(0);
        }
        let n = self.inner.read(&mut buf[..limit])?;
        let end = start + n as u64;
        let mut fired = self.fired.borrow_mut();
        for (i, fault) in self.faults.iter().enumerate() {
            if fired[i] || fault.offset < start || fault.offset >= end {
                continue;
            }
            match fault.kind {
                ReadFaultKind::FlipBits(mask) => {
                    fired[i] = true;
                    buf[(fault.offset - start) as usize] ^= mask;
                }
                ReadFaultKind::TransientError => {
                    fired[i] = true;
                    // The bytes are discarded; the caller retries the read.
                    // negassoc-lint: allow(L012) -- fault-trigger path; fires at most once per plan entry, then returns
                    return Err(io::Error::other(format!(
                        "{INJECTED}: read error at byte {}",
                        fault.offset
                    )));
                }
                ReadFaultKind::Slow(d) => {
                    fired[i] = true;
                    std::thread::sleep(d);
                }
                ReadFaultKind::Truncate => {}
            }
        }
        self.pos.set(end);
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{TransactionDb, TransactionDbBuilder};

    fn db(n: u64) -> TransactionDb {
        let mut b = TransactionDbBuilder::new();
        for i in 0..n {
            b.add([ItemId(i as u32 % 5), ItemId(10 + i as u32 % 3)]);
        }
        b.build()
    }

    fn collect(src: &dyn TransactionSource) -> io::Result<Vec<(u64, Vec<ItemId>)>> {
        let mut out = Vec::new();
        src.pass(&mut |t| out.push((t.tid(), t.items().to_vec())))?;
        Ok(out)
    }

    #[test]
    fn transient_fault_fails_one_pass_then_heals() {
        let plan = FaultPlan::new(vec![SourceFault {
            pass: 0,
            at_transaction: 3,
            kind: SourceFaultKind::TransientError,
        }]);
        let faulty = FaultySource::new(db(10), plan);
        let err = collect(&faulty).unwrap_err();
        assert!(err.to_string().contains(INJECTED));
        assert!(is_transient(&err));
        // Second attempt is pass 1 — no fault.
        assert_eq!(collect(&faulty).unwrap().len(), 10);
        assert_eq!(faulty.passes_attempted(), 2);
    }

    #[test]
    fn retrying_source_delivers_exactly_once_across_retries() {
        let plan = FaultPlan::new(vec![
            SourceFault {
                pass: 0,
                at_transaction: 4,
                kind: SourceFaultKind::TransientError,
            },
            SourceFault {
                pass: 1,
                at_transaction: 7,
                kind: SourceFaultKind::Truncate,
            },
        ]);
        let retrying = RetryingSource::new(
            FaultySource::new(db(10), plan),
            RetryPolicy::new(3, Duration::ZERO),
        );
        let got = collect(&retrying).unwrap();
        assert_eq!(retrying.retries_used(), 2);
        // Every transaction exactly once, in order, despite two faults.
        let clean = collect(&db(10)).unwrap();
        assert_eq!(got, clean);
        assert_eq!(retrying.len_hint(), Some(10));
        assert_eq!(retrying.inner().inner().len(), 10);
    }

    #[test]
    fn permanent_faults_are_not_retried() {
        let plan = FaultPlan::new(vec![SourceFault {
            pass: 0,
            at_transaction: 2,
            kind: SourceFaultKind::PermanentError,
        }]);
        let retrying = RetryingSource::new(
            FaultySource::new(db(5), plan),
            RetryPolicy::new(5, Duration::ZERO),
        );
        let err = collect(&retrying).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert_eq!(retrying.retries_used(), 0);
    }

    #[test]
    fn retry_budget_exhausts_into_the_last_error() {
        // Faults on passes 0, 1 and 2; only one retry allowed.
        let faults = (0..3)
            .map(|p| SourceFault {
                pass: p,
                at_transaction: 0,
                kind: SourceFaultKind::TransientError,
            })
            .collect();
        let retrying = RetryingSource::new(
            FaultySource::new(db(5), FaultPlan::new(faults)),
            RetryPolicy::new(1, Duration::ZERO),
        );
        assert!(collect(&retrying)
            .unwrap_err()
            .to_string()
            .contains(INJECTED));
        assert_eq!(retrying.retries_used(), 1);
    }

    #[test]
    fn slow_faults_delay_but_do_not_fail() {
        let plan = FaultPlan::new(vec![SourceFault {
            pass: 0,
            at_transaction: 1,
            kind: SourceFaultKind::Slow(Duration::from_millis(20)),
        }]);
        let faulty = FaultySource::new(db(4), plan);
        let start = std::time::Instant::now();
        assert_eq!(collect(&faulty).unwrap().len(), 4);
        assert!(start.elapsed() >= Duration::from_millis(15));
    }

    #[test]
    fn bit_flip_delivers_silently_corrupt_data() {
        let plan = FaultPlan::new(vec![SourceFault {
            pass: 0,
            at_transaction: 0,
            kind: SourceFaultKind::FlipItemBit { bit: 4 },
        }]);
        let faulty = FaultySource::new(db(3), plan);
        let got = collect(&faulty).unwrap();
        let clean = collect(&db(3)).unwrap();
        assert_eq!(got.len(), clean.len());
        assert_ne!(got[0].1, clean[0].1, "first transaction must be corrupted");
        assert_eq!(got[1..], clean[1..]);
    }

    #[test]
    fn seeded_plans_are_deterministic_and_transient_only() {
        let a = FaultPlan::seeded_transient(42, 5, 100, 4);
        let b = FaultPlan::seeded_transient(42, 5, 100, 4);
        assert_eq!(a, b);
        assert_eq!(a.len(), 4);
        assert!(!a.is_empty());
        for f in a.faults() {
            assert!(f.pass < 5);
            assert!(f.at_transaction < 100);
            assert!(matches!(
                f.kind,
                SourceFaultKind::TransientError | SourceFaultKind::Truncate
            ));
        }
        assert_ne!(a, FaultPlan::seeded_transient(43, 5, 100, 4));
        assert!(FaultPlan::none().is_empty());
    }

    #[test]
    fn faulty_reader_flips_truncates_and_errors() {
        let data: Vec<u8> = (0..=255u8).collect();

        // Bit flip at offset 10.
        let mut r = FaultyReader::new(
            data.as_slice(),
            vec![ReadFault {
                offset: 10,
                kind: ReadFaultKind::FlipBits(0x01),
            }],
        );
        let mut out = Vec::new();
        r.read_to_end(&mut out).unwrap();
        assert_eq!(out.len(), 256);
        assert_eq!(out[10], 10 ^ 0x01);
        assert_eq!(out[11], 11);

        // Truncation at offset 100.
        let mut r = FaultyReader::new(
            data.as_slice(),
            vec![ReadFault {
                offset: 100,
                kind: ReadFaultKind::Truncate,
            }],
        );
        let mut out = Vec::new();
        r.read_to_end(&mut out).unwrap();
        assert_eq!(out.len(), 100);

        // Transient error at offset 0, fires once.
        let mut r = FaultyReader::new(
            data.as_slice(),
            vec![ReadFault {
                offset: 0,
                kind: ReadFaultKind::TransientError,
            }],
        );
        let mut buf = [0u8; 16];
        assert!(r.read(&mut buf).is_err());
        // The failed read consumed inner bytes (as a real short read
        // would); what matters is the error fired exactly once.
        assert!(r.read(&mut buf).is_ok());
    }

    #[test]
    fn observed_faults_and_retries_emit_events_and_metrics() {
        use crate::obs::{metric, Metrics, RingBufferSink};
        use std::sync::Arc;

        let ring = Arc::new(RingBufferSink::new(16));
        let metrics = Arc::new(Metrics::new());
        let obs = Obs::disabled()
            .with_sink(ring.clone())
            .with_metrics(metrics.clone());
        let plan = FaultPlan::new(vec![SourceFault {
            pass: 0,
            at_transaction: 2,
            kind: SourceFaultKind::TransientError,
        }]);
        let retrying = RetryingSource::new(
            FaultySource::new(db(6), plan).with_obs(obs.clone()),
            RetryPolicy::new(2, Duration::ZERO),
        )
        .with_obs(obs);
        assert_eq!(collect(&retrying).unwrap().len(), 6);

        let events = ring.snapshot();
        assert!(events.iter().any(|e| matches!(
            e,
            Event::FaultHit {
                pass: 0,
                transaction: 2,
                transient: true,
                ..
            }
        )));
        assert!(events.iter().any(|e| matches!(
            e,
            Event::Retry {
                attempt: 1,
                max: 2,
                ..
            }
        )));
        let snap = metrics.snapshot();
        let value = |name: &str| {
            snap.iter()
                .find(|(n, _, _)| n == name)
                .map(|&(_, _, v)| v)
                .unwrap_or(0)
        };
        assert_eq!(value(metric::FAULTS_INJECTED), 1);
        assert_eq!(value(metric::RETRIES), 1);
    }

    #[test]
    fn retry_policy_backoff_is_capped() {
        let p = RetryPolicy::new(2, Duration::from_millis(1));
        let start = std::time::Instant::now();
        p.sleep(0);
        p.sleep(1);
        assert!(start.elapsed() < Duration::from_millis(500));
        // A huge attempt index must not overflow or sleep unboundedly —
        // the cap keeps it at MAX_SLEEP. (Not actually slept here.)
        let exp = Duration::from_millis(1).saturating_mul(1u32 << 16);
        assert!(exp.min(RetryPolicy::MAX_SLEEP) == RetryPolicy::MAX_SLEEP);
        assert_eq!(RetryPolicy::default().max_retries, 3);
    }
}
