//! Cooperative run control: cancellation tokens, deadlines and a stall
//! watchdog.
//!
//! The paper's pipeline is `n + 1` full database passes, so a mining run
//! is long-lived by construction. This module supplies the primitives a
//! service needs to bound and interrupt one:
//!
//! * [`CancelToken`] — a lock-free, cloneable flag with a first-write-wins
//!   [`CancelReason`]. Long loops call [`CancelToken::check`] at block and
//!   pass boundaries; counting code reports liveness through
//!   [`CancelToken::record_progress`].
//! * [`Deadline`] — a wall-clock budget for the whole run.
//! * [`Watchdog`] — a background monitor that trips the token when the
//!   deadline expires, an interrupt flag is raised (e.g. SIGINT), or the
//!   progress counter stalls for longer than a configured window.
//!
//! Cancellation travels as an [`io::Error`] of kind
//! [`io::ErrorKind::Interrupted`] carrying a downcastable [`Cancellation`]
//! payload, mirroring how the candidate-budget overflow rides through the
//! pass boundary; [`cancellation_of`] recovers the reason at any layer.
//! The txdb crate sits at the bottom of the workspace, so these types live
//! here (the worker pool in [`crate::block`] needs them) and the core
//! crate re-exports them as `core::ctrl`.

use std::error::Error as StdError;
use std::fmt;
use std::io;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why a run was cancelled. First write wins: once a token carries a
/// reason, later `cancel` calls are ignored.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CancelReason {
    /// The operator asked for the run to stop (SIGINT / explicit cancel).
    UserInterrupt,
    /// The run's wall-clock [`Deadline`] expired.
    DeadlineExceeded,
    /// The [`Watchdog`] saw no counting progress for a full stall window.
    Stalled,
}

impl CancelReason {
    /// Stable lowercase name, used in diagnostics and JSON.
    pub fn as_str(self) -> &'static str {
        match self {
            CancelReason::UserInterrupt => "user interrupt",
            CancelReason::DeadlineExceeded => "deadline exceeded",
            CancelReason::Stalled => "stalled",
        }
    }

    fn from_state(state: u8) -> Option<Self> {
        match state {
            STATE_USER => Some(CancelReason::UserInterrupt),
            STATE_DEADLINE => Some(CancelReason::DeadlineExceeded),
            STATE_STALLED => Some(CancelReason::Stalled),
            _ => None,
        }
    }

    fn as_state(self) -> u8 {
        match self {
            CancelReason::UserInterrupt => STATE_USER,
            CancelReason::DeadlineExceeded => STATE_DEADLINE,
            CancelReason::Stalled => STATE_STALLED,
        }
    }
}

impl fmt::Display for CancelReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The typed payload a cancelled pass carries through the `io::Error`
/// boundary. Recover it with [`cancellation_of`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Cancellation {
    /// Why the token was tripped.
    pub reason: CancelReason,
}

impl fmt::Display for Cancellation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "run cancelled: {}", self.reason)
    }
}

impl StdError for Cancellation {}

impl From<Cancellation> for io::Error {
    fn from(c: Cancellation) -> io::Error {
        io::Error::new(io::ErrorKind::Interrupted, c)
    }
}

/// The [`CancelReason`] inside `e`, if `e` is a cancellation produced by
/// [`CancelToken::check`] (directly or wrapped by a retry layer's chain).
pub fn cancellation_of(e: &io::Error) -> Option<CancelReason> {
    if e.kind() != io::ErrorKind::Interrupted {
        return None;
    }
    e.get_ref()
        .and_then(|inner| inner.downcast_ref::<Cancellation>())
        .map(|c| c.reason)
}

const STATE_LIVE: u8 = 0;
const STATE_USER: u8 = 1;
const STATE_DEADLINE: u8 = 2;
const STATE_STALLED: u8 = 3;

#[derive(Debug, Default)]
struct TokenInner {
    /// `STATE_LIVE` or a `STATE_*` reason code; written exactly once.
    state: AtomicU8,
    /// Monotonic heartbeat: transactions (or comparable work units)
    /// processed since the token was created. Only ever compared for
    /// change, never for magnitude.
    progress: AtomicU64,
}

/// A lock-free cancellation flag shared by everyone involved in one run.
///
/// Clones share state. Checking is two relaxed atomic loads, cheap enough
/// for once-per-block use on the counting hot path; cancelling is a single
/// compare-exchange, safe from any thread including a watchdog.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    inner: Arc<TokenInner>,
}

impl CancelToken {
    /// A live (not cancelled) token with a zeroed progress counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Trip the token. Returns `true` if this call won the race and its
    /// `reason` sticks; `false` if the token was already cancelled.
    pub fn cancel(&self, reason: CancelReason) -> bool {
        self.inner
            .state
            .compare_exchange(
                STATE_LIVE,
                reason.as_state(),
                Ordering::AcqRel,
                Ordering::Acquire,
            )
            .is_ok()
    }

    /// `true` once any party has cancelled the run.
    pub fn is_cancelled(&self) -> bool {
        self.inner.state.load(Ordering::Acquire) != STATE_LIVE
    }

    /// The winning reason, once cancelled.
    pub fn reason(&self) -> Option<CancelReason> {
        CancelReason::from_state(self.inner.state.load(Ordering::Acquire))
    }

    /// `Ok(())` while live; once cancelled, an [`io::ErrorKind::Interrupted`]
    /// error carrying the [`Cancellation`] payload. Call at block and pass
    /// boundaries.
    pub fn check(&self) -> io::Result<()> {
        match self.reason() {
            None => Ok(()),
            Some(reason) => Err(Cancellation { reason }.into()),
        }
    }

    /// Record `units` of completed counting work (the watchdog's
    /// heartbeat). Relaxed: only change matters, not ordering.
    pub fn record_progress(&self, units: u64) {
        self.inner.progress.fetch_add(units, Ordering::Relaxed);
    }

    /// Total work units recorded so far.
    pub fn progress(&self) -> u64 {
        self.inner.progress.load(Ordering::Relaxed)
    }
}

/// A wall-clock budget for a run, measured from creation.
#[derive(Clone, Copy, Debug)]
pub struct Deadline {
    at: Instant,
}

impl Deadline {
    /// A deadline `budget` from now. A zero budget is already expired.
    pub fn after(budget: Duration) -> Self {
        Self {
            at: Instant::now() + budget,
        }
    }

    /// `true` once the budget is spent.
    pub fn expired(&self) -> bool {
        Instant::now() >= self.at
    }

    /// Time left before expiry (zero once expired).
    pub fn remaining(&self) -> Duration {
        self.at.saturating_duration_since(Instant::now())
    }
}

/// A background monitor that trips a [`CancelToken`] on deadline expiry,
/// a raised interrupt flag, or stalled progress.
///
/// The monitor polls a few dozen times per second (scaled down from the
/// stall window), so cancellation latency is bounded by the poll interval
/// plus one block of counting work. Dropping the watchdog stops and joins
/// the monitor thread; the token survives and keeps its verdict. The
/// monitor parks rather than sleeps between polls, so the drop-side join
/// returns as soon as it unparks the thread — a completed run never waits
/// out a poll interval (that latency would otherwise tax *every*
/// controlled run, see `BENCH_ctrl.json`).
#[derive(Debug)]
pub struct Watchdog {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Watchdog {
    /// Start monitoring `token`. Any subset of the three triggers may be
    /// configured; with none, the watchdog is a no-op (but still cheap).
    ///
    /// An already-expired `deadline` cancels the token synchronously,
    /// before any thread is spawned, so `--deadline 0` is deterministic.
    pub fn spawn(
        token: CancelToken,
        deadline: Option<Deadline>,
        stall_window: Option<Duration>,
        interrupt: Option<Arc<AtomicBool>>,
    ) -> Self {
        if let Some(d) = deadline {
            if d.expired() {
                token.cancel(CancelReason::DeadlineExceeded);
            }
        }
        let stop = Arc::new(AtomicBool::new(false));
        if token.is_cancelled() {
            return Self { stop, handle: None };
        }
        let poll = match stall_window {
            Some(w) => (w / 4).clamp(Duration::from_millis(2), Duration::from_millis(50)),
            None => Duration::from_millis(25),
        };
        let stop_flag = Arc::clone(&stop);
        // The monitor must outlive any single pass and owns no borrows, so
        // the scoped pool in `block` cannot host it. It is joined on drop.
        // negassoc-lint: allow(L007) — the watchdog monitor is the one free thread besides the counting pool; Watchdog::drop joins it deterministically.
        let handle = std::thread::spawn(move || {
            let mut last_progress = token.progress();
            let mut last_change = Instant::now();
            while !stop_flag.load(Ordering::Acquire) && !token.is_cancelled() {
                if interrupt
                    .as_deref()
                    .is_some_and(|f| f.load(Ordering::Acquire))
                {
                    token.cancel(CancelReason::UserInterrupt);
                    break;
                }
                if deadline.is_some_and(|d| d.expired()) {
                    token.cancel(CancelReason::DeadlineExceeded);
                    break;
                }
                if let Some(window) = stall_window {
                    let p = token.progress();
                    if p != last_progress {
                        last_progress = p;
                        last_change = Instant::now();
                    } else if last_change.elapsed() >= window {
                        token.cancel(CancelReason::Stalled);
                        break;
                    }
                }
                // Parked, not asleep: Drop unparks for a prompt join.
                // Spurious wakeups just re-run the trigger checks.
                std::thread::park_timeout(poll);
            }
        });
        Self {
            stop,
            handle: Some(handle),
        }
    }
}

impl Drop for Watchdog {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(handle) = self.handle.take() {
            // Wake the monitor out of its poll wait so the join is
            // immediate instead of up to one poll interval late.
            handle.thread().unpark();
            // A monitor panic would already have tripped nothing; ignore.
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_starts_live_and_checks_ok() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        assert_eq!(t.reason(), None);
        t.check().unwrap();
        assert_eq!(t.progress(), 0);
    }

    #[test]
    fn first_cancel_wins_and_sticks() {
        let t = CancelToken::new();
        assert!(t.cancel(CancelReason::DeadlineExceeded));
        assert!(!t.cancel(CancelReason::UserInterrupt));
        assert_eq!(t.reason(), Some(CancelReason::DeadlineExceeded));
        // Clones share the verdict.
        let c = t.clone();
        assert!(c.is_cancelled());
    }

    #[test]
    fn check_carries_a_downcastable_reason() {
        let t = CancelToken::new();
        t.cancel(CancelReason::UserInterrupt);
        let err = t.check().unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::Interrupted);
        assert_eq!(cancellation_of(&err), Some(CancelReason::UserInterrupt));
        assert!(err.to_string().contains("user interrupt"));
        // Foreign Interrupted errors are not cancellations.
        let foreign = io::Error::new(io::ErrorKind::Interrupted, "EINTR");
        assert_eq!(cancellation_of(&foreign), None);
        let other = io::Error::new(io::ErrorKind::Other, "boom");
        assert_eq!(cancellation_of(&other), None);
    }

    #[test]
    fn progress_accumulates_across_clones() {
        let t = CancelToken::new();
        let c = t.clone();
        t.record_progress(10);
        c.record_progress(5);
        assert_eq!(t.progress(), 15);
    }

    #[test]
    fn deadline_expiry() {
        let d = Deadline::after(Duration::ZERO);
        assert!(d.expired());
        assert_eq!(d.remaining(), Duration::ZERO);
        let far = Deadline::after(Duration::from_secs(3600));
        assert!(!far.expired());
        assert!(far.remaining() > Duration::from_secs(3500));
    }

    #[test]
    fn expired_deadline_cancels_synchronously() {
        let t = CancelToken::new();
        let _w = Watchdog::spawn(t.clone(), Some(Deadline::after(Duration::ZERO)), None, None);
        // No sleep: the guarantee is synchronous, not eventual.
        assert_eq!(t.reason(), Some(CancelReason::DeadlineExceeded));
    }

    #[test]
    fn watchdog_trips_on_future_deadline() {
        let t = CancelToken::new();
        let _w = Watchdog::spawn(
            t.clone(),
            Some(Deadline::after(Duration::from_millis(10))),
            None,
            None,
        );
        let start = Instant::now();
        while !t.is_cancelled() && start.elapsed() < Duration::from_secs(5) {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(t.reason(), Some(CancelReason::DeadlineExceeded));
    }

    #[test]
    fn watchdog_trips_on_interrupt_flag() {
        let t = CancelToken::new();
        let flag = Arc::new(AtomicBool::new(false));
        let _w = Watchdog::spawn(t.clone(), None, None, Some(Arc::clone(&flag)));
        flag.store(true, Ordering::Release);
        let start = Instant::now();
        while !t.is_cancelled() && start.elapsed() < Duration::from_secs(5) {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(t.reason(), Some(CancelReason::UserInterrupt));
    }

    #[test]
    fn watchdog_trips_on_stall_but_not_under_progress() {
        // Stalled token: no progress for a full window.
        let t = CancelToken::new();
        let _w = Watchdog::spawn(t.clone(), None, Some(Duration::from_millis(40)), None);
        let start = Instant::now();
        while !t.is_cancelled() && start.elapsed() < Duration::from_secs(5) {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(t.reason(), Some(CancelReason::Stalled));

        // Heartbeating token: progress every few ms keeps it alive well
        // past the window.
        let live = CancelToken::new();
        let w = Watchdog::spawn(live.clone(), None, Some(Duration::from_millis(150)), None);
        let start = Instant::now();
        while start.elapsed() < Duration::from_millis(450) {
            live.record_progress(1);
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(!live.is_cancelled(), "progress must hold the watchdog off");
        drop(w);
        assert!(
            !live.is_cancelled(),
            "dropping the watchdog cancels nothing"
        );
    }

    #[test]
    fn dropping_the_watchdog_joins_promptly() {
        let t = CancelToken::new();
        let w = Watchdog::spawn(t, None, Some(Duration::from_secs(3600)), None);
        let start = Instant::now();
        drop(w);
        assert!(start.elapsed() < Duration::from_secs(2));
    }
}
