//! Fixed-size transaction blocks and a scoped worker-pool pass executor.
//!
//! Support counting dominates every pass of the paper's pipeline, and
//! per-partition counts merge additively (Savasere et al., VLDB '95;
//! Agrawal & Shafer's count distribution, TKDE '96). This module supplies
//! the substrate both facts rest on:
//!
//! * [`Parallelism`] — the policy knob every miner takes (sequential,
//!   a fixed thread count, or whatever the machine offers),
//! * [`TransactionBlock`] — an owned, flat batch of consecutive
//!   transactions cut from any [`TransactionSource`] stream,
//! * [`parallel_pass`] — one database pass fanned out over
//!   `std::thread::scope` workers through a bounded channel.
//!
//! The executor works for *streamed* sources because the producer — the
//! caller's thread — is the only one that touches the source: it runs the
//! single `pass`, copies transactions into blocks, and hands the blocks to
//! workers. Workers never share mutable state on the hot path; each owns
//! its private accumulator (`W`) and the only lock taken is a
//! block-granularity pop from the shared queue. Results are combined by
//! the caller after all workers finish, in spawn order, so any additive
//! merge is deterministic.
//!
//! This is the one module allowed to create threads (xtask lint L007
//! forbids bare `std::thread::spawn` everywhere; scoped workers confine
//! every thread's lifetime to the pass that spawned it).
//!
//! A pass can be cancelled cooperatively: [`parallel_pass_ctrl`] takes an
//! optional [`CancelToken`] that the producer checks between blocks and
//! workers check between pops (the pop switches from a blocking `recv()`
//! to a short `recv_timeout`, so a cancelled pool wakes and drains within
//! one poll interval instead of blocking forever). A cancelled pass
//! returns the token's [`crate::ctrl::Cancellation`] as an
//! [`io::ErrorKind::Interrupted`] error — never partial counts.

use crate::ctrl::CancelToken;
use crate::obs::{metric, Event, MetricId, MetricKind, Metrics, Obs};
use crate::scan::TransactionSource;
use crate::transaction::Transaction;
use negassoc_taxonomy::ItemId;
use std::io;
use std::sync::mpsc;
use std::sync::Mutex;
use std::time::Duration;

/// Transactions per block handed to a worker. Large enough that the
/// per-block channel/lock traffic is noise, small enough that a handful of
/// in-flight blocks fit comfortably in cache.
pub const DEFAULT_BLOCK_SIZE: usize = 1024;

/// How many worker threads a counting pass may use.
///
/// Whatever the policy, counts are **exact** and results are byte-identical
/// to a sequential run: blocks partition the stream, per-block tallies are
/// order-independent `u64` additions, and the final merge visits workers in
/// spawn order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Parallelism {
    /// One thread, no channel, no worker pool (the default).
    #[default]
    Sequential,
    /// Exactly this many worker threads (`0` is treated as `1`; the miner
    /// configuration layer rejects it earlier with a proper error).
    Threads(usize),
    /// `std::thread::available_parallelism`, falling back to one thread
    /// when the runtime cannot tell.
    Auto,
}

impl Parallelism {
    /// The concrete worker count this policy resolves to (always ≥ 1).
    pub fn resolve(self) -> usize {
        match self {
            Parallelism::Sequential => 1,
            Parallelism::Threads(n) => n.max(1),
            Parallelism::Auto => std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
        }
    }
}

/// An owned, contiguous run of transactions cut from a source's pass.
///
/// Flat storage (one item array plus offsets) mirrors
/// [`crate::TransactionDb`]; `start` records the run's position in the
/// stream so consumers that care about absolute transaction positions
/// (e.g. parallel TID-list construction) can reconstruct them as
/// `start + index_in_block`.
#[derive(Clone, Debug, Default)]
pub struct TransactionBlock {
    start: u64,
    tids: Vec<u64>,
    items: Vec<ItemId>,
    offsets: Vec<usize>,
}

impl TransactionBlock {
    /// An empty block whose first transaction will sit at stream position
    /// `start`.
    pub fn with_start(start: u64) -> Self {
        Self {
            start,
            tids: Vec::new(),
            items: Vec::new(),
            offsets: vec![0],
        }
    }

    /// Stream position of the block's first transaction.
    #[inline]
    pub fn start(&self) -> u64 {
        self.start
    }

    /// Number of transactions in the block.
    #[inline]
    pub fn len(&self) -> usize {
        self.tids.len()
    }

    /// `true` when the block holds no transactions.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.tids.is_empty()
    }

    /// Append a copy of `t`.
    pub fn push(&mut self, t: Transaction<'_>) {
        self.tids.push(t.tid());
        self.items.extend_from_slice(t.items());
        self.offsets.push(self.items.len());
    }

    /// Empty the block (keeping its allocations) and move it to stream
    /// position `start`.
    pub fn reset(&mut self, start: u64) {
        self.start = start;
        self.tids.clear();
        self.items.clear();
        self.offsets.clear();
        self.offsets.push(0);
    }

    /// The transactions of the block, in stream order.
    pub fn iter(&self) -> impl Iterator<Item = Transaction<'_>> {
        (0..self.len()).map(move |i| {
            Transaction::new(
                self.tids[i],
                &self.items[self.offsets[i]..self.offsets[i + 1]],
            )
        })
    }
}

impl TransactionSource for TransactionBlock {
    fn pass(&self, f: &mut dyn FnMut(Transaction<'_>)) -> io::Result<()> {
        for t in self.iter() {
            f(t);
        }
        Ok(())
    }

    fn len_hint(&self) -> Option<u64> {
        Some(self.len() as u64)
    }
}

/// Map `f` over `items` on up to `threads` scoped workers, returning the
/// results **in input order** (so any downstream fold is deterministic).
///
/// Items are dealt out in contiguous chunks, one per worker; with
/// `threads <= 1` (or a single chunk) everything runs inline on the
/// caller. This is the coarse-grained sibling of [`parallel_pass`], used
/// where the unit of work is bigger than a transaction block — e.g. mining
/// whole database partitions independently. A worker panic is re-raised on
/// the caller.
pub fn parallel_map<T, R, F>(items: Vec<T>, threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    let chunk = n.div_ceil(threads.max(1)).max(1);
    if threads <= 1 || n <= chunk {
        return items.into_iter().map(f).collect();
    }
    let mut chunks: Vec<Vec<T>> = Vec::new();
    let mut items = items.into_iter();
    loop {
        let c: Vec<T> = items.by_ref().take(chunk).collect();
        if c.is_empty() {
            break;
        }
        chunks.push(c);
    }
    let f = &f;
    std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|c| scope.spawn(move || c.into_iter().map(f).collect::<Vec<R>>()))
            .collect();
        let mut out = Vec::with_capacity(n);
        for handle in handles {
            match handle.join() {
                Ok(rs) => out.extend(rs),
                Err(panic) => std::panic::resume_unwind(panic),
            }
        }
        out
    })
}

/// One database pass, fanned out over `threads` scoped workers.
///
/// The calling thread is the producer: it runs `source.pass` once, slices
/// the stream into blocks of `block_size` transactions and feeds them to a
/// bounded channel. Each worker builds its private state with
/// `make_worker`, folds blocks into it with `process`, and reduces it to a
/// result with `finish`. Returns the per-worker results **in spawn order**
/// plus the number of transactions scanned.
///
/// With `threads <= 1` no thread, channel or lock is involved: the same
/// `make_worker`/`process`/`finish` cycle runs inline on the caller, so
/// sequential and parallel executions share one code path and one answer.
///
/// A worker panic is re-raised on the caller; an `Err` from the source's
/// pass is returned after the workers have drained and exited.
pub fn parallel_pass<S, W, R, FNew, FProc, FFin>(
    source: &S,
    threads: usize,
    block_size: usize,
    make_worker: FNew,
    process: FProc,
    finish: FFin,
) -> io::Result<(Vec<R>, u64)>
where
    S: TransactionSource + ?Sized,
    R: Send,
    FNew: Fn() -> W + Sync,
    FProc: Fn(&mut W, &TransactionBlock) + Sync,
    FFin: Fn(W) -> R + Sync,
{
    parallel_pass_ctrl(
        source,
        threads,
        block_size,
        None,
        &Obs::disabled(),
        make_worker,
        process,
        finish,
    )
}

/// The per-worker metric ids a pass registers up front (cold path), so
/// the hot path is a plain shard increment.
#[derive(Clone, Copy)]
struct PassMetricIds {
    blocks: MetricId,
    transactions: MetricId,
}

fn pass_metric_ids(obs: &Obs) -> Option<PassMetricIds> {
    obs.metrics().map(|m| PassMetricIds {
        blocks: m.register(metric::BLOCKS_DISPATCHED, MetricKind::Counter),
        transactions: m.register(metric::TRANSACTIONS_SCANNED, MetricKind::Counter),
    })
}

/// How long a worker waits on the queue before re-checking the cancel
/// token. Bounds cancellation latency on an idle pool; on a busy pool the
/// token is checked after every block instead.
const CTRL_POLL: Duration = Duration::from_millis(20);

/// The one send path to the worker pool: a failure means every receiver is
/// gone (workers panicked, or all broke out on cancellation), and both
/// producer sites must record it the same way so the pass stops feeding a
/// dead pool. The join loop re-raises any worker panic afterwards.
fn send_or_note_gone(
    tx: &mpsc::SyncSender<TransactionBlock>,
    block: TransactionBlock,
    receivers_gone: &mut bool,
) {
    *receivers_gone = tx.send(block).is_err();
}

/// [`parallel_pass`] with cooperative cancellation.
///
/// When `ctrl` is `Some`, the token is consulted at block granularity on
/// every thread involved: the producer stops slicing the stream, workers
/// stop popping (their blocking `recv()` becomes a [`CTRL_POLL`]
/// `recv_timeout`, so even an idle worker wakes promptly), and the pass
/// returns the token's cancellation error. Counting progress is reported
/// back through [`CancelToken::record_progress`] — one unit per
/// transaction — which is what the stall watchdog listens to.
///
/// A cancelled pass never returns partial tallies: any cancellation
/// observed before return yields `Err`, and the caller's own completed
/// state (e.g. previously checkpointed passes) is the only survivor.
///
/// Observability: `obs` sees one [`Event::BlockDispatch`] per block fed
/// to the pool and one [`Event::BlockMerge`] when a completed pass
/// merges its workers; the [`metric::BLOCKS_DISPATCHED`] and
/// [`metric::TRANSACTIONS_SCANNED`] counters are accumulated in private
/// per-worker [`crate::obs::MetricsShard`]s and absorbed at the merge —
/// the same discipline as the count merge itself.
#[allow(clippy::too_many_arguments)]
pub fn parallel_pass_ctrl<S, W, R, FNew, FProc, FFin>(
    source: &S,
    threads: usize,
    block_size: usize,
    ctrl: Option<&CancelToken>,
    obs: &Obs,
    make_worker: FNew,
    process: FProc,
    finish: FFin,
) -> io::Result<(Vec<R>, u64)>
where
    S: TransactionSource + ?Sized,
    R: Send,
    FNew: Fn() -> W + Sync,
    FProc: Fn(&mut W, &TransactionBlock) + Sync,
    FFin: Fn(W) -> R + Sync,
{
    let block_size = block_size.max(1);
    let metric_ids = pass_metric_ids(obs);
    if threads <= 1 {
        let mut worker = make_worker();
        let mut shard = obs.metrics().map(Metrics::shard);
        let mut block = TransactionBlock::with_start(0);
        let mut total = 0u64;
        let mut cancelled = false;
        source.pass(&mut |t| {
            if cancelled {
                return;
            }
            block.push(t);
            total += 1;
            if block.len() >= block_size {
                obs.emit(|| Event::BlockDispatch {
                    start: block.start(),
                    transactions: block.len(),
                });
                process(&mut worker, &block);
                if let (Some(s), Some(ids)) = (shard.as_mut(), metric_ids) {
                    s.add(ids.blocks, 1);
                    s.add(ids.transactions, block.len() as u64);
                }
                if let Some(c) = ctrl {
                    c.record_progress(block.len() as u64);
                    cancelled = c.is_cancelled();
                }
                let next = block.start() + block.len() as u64;
                block.reset(next);
            }
        })?;
        if let Some(c) = ctrl {
            c.check()?;
        }
        if !block.is_empty() {
            obs.emit(|| Event::BlockDispatch {
                start: block.start(),
                transactions: block.len(),
            });
            process(&mut worker, &block);
            if let (Some(s), Some(ids)) = (shard.as_mut(), metric_ids) {
                s.add(ids.blocks, 1);
                s.add(ids.transactions, block.len() as u64);
            }
            if let Some(c) = ctrl {
                c.record_progress(block.len() as u64);
            }
        }
        if let (Some(m), Some(s)) = (obs.metrics(), shard.as_ref()) {
            m.absorb(s);
        }
        obs.emit(|| Event::BlockMerge {
            workers: 1,
            transactions: total,
        });
        return Ok((vec![finish(worker)], total));
    }

    // Bounded: the producer stays at most a few blocks ahead, so a
    // streamed source never balloons into memory. The receiver is owned
    // collectively by the workers (one Arc handle each, dropped on exit —
    // normal, cancelled or panicking), so "every worker is gone" is
    // observable by the producer as a failed send even while it is blocked
    // on the full channel: the blocked-waiters path wakes instead of
    // waiting forever.
    let (tx, rx) = mpsc::sync_channel::<TransactionBlock>(threads * 2);
    // negassoc-lint: allow(L012) -- this lock serializes only the queue pop (see the worker loop below), never the counting work itself
    let rx = std::sync::Arc::new(Mutex::new(rx));
    let (results, total, pass_result) = std::thread::scope(|scope| {
        let make_worker = &make_worker;
        let process = &process;
        let finish = &finish;
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let rx = std::sync::Arc::clone(&rx);
                scope.spawn(move || {
                    let mut worker = make_worker();
                    let mut shard = obs.metrics().map(Metrics::shard);
                    loop {
                        // The lock is held across the pop: blocked waiters
                        // simply queue behind it, which serializes only the
                        // *pop*, never the counting work.
                        let next = {
                            let guard = match rx.lock() {
                                Ok(g) => g,
                                // A sibling panicked while holding the
                                // lock; the queue itself is still sound.
                                Err(poisoned) => poisoned.into_inner(),
                            };
                            match ctrl {
                                // No token: a plain blocking recv(); the
                                // producer's hang-up is the only wake-up
                                // needed.
                                None => guard.recv().map_err(|_| None),
                                // With a token the pop must wake on its own
                                // to notice cancellation even when the
                                // producer is stuck upstream.
                                Some(c) => guard.recv_timeout(CTRL_POLL).map_err(|e| match e {
                                    mpsc::RecvTimeoutError::Timeout => Some(c),
                                    mpsc::RecvTimeoutError::Disconnected => None,
                                }),
                            }
                        };
                        match next {
                            Ok(block) => {
                                process(&mut worker, &block);
                                if let (Some(s), Some(ids)) = (shard.as_mut(), metric_ids) {
                                    s.add(ids.blocks, 1);
                                    s.add(ids.transactions, block.len() as u64);
                                }
                                if let Some(c) = ctrl {
                                    c.record_progress(block.len() as u64);
                                    if c.is_cancelled() {
                                        break;
                                    }
                                }
                            }
                            // Producer hung up and the queue is drained.
                            Err(None) => break,
                            // Poll expired: drop the lock, re-check, wait
                            // again. Breaking drops our receiver handle,
                            // which is what unblocks a producer stuck in
                            // send() on a full channel.
                            Err(Some(c)) => {
                                if c.is_cancelled() {
                                    break;
                                }
                            }
                        }
                    }
                    // Pass boundary: the private shard merges additively
                    // into the shared registry, like the counts below.
                    if let (Some(m), Some(s)) = (obs.metrics(), shard.as_ref()) {
                        m.absorb(s);
                    }
                    finish(worker)
                })
            })
            .collect();
        // The workers hold the only remaining receiver handles; releasing
        // the producer's keeps the pool's lifetime honest.
        drop(rx);

        let mut total = 0u64;
        let mut block = TransactionBlock::with_start(0);
        let mut receivers_gone = false;
        let mut cancelled = false;
        let pass_result = source.pass(&mut |t| {
            if receivers_gone || cancelled {
                return;
            }
            block.push(t);
            total += 1;
            if block.len() >= block_size {
                obs.emit(|| Event::BlockDispatch {
                    start: block.start(),
                    transactions: block.len(),
                });
                let next = block.start() + block.len() as u64;
                let full = std::mem::replace(&mut block, TransactionBlock::with_start(next));
                send_or_note_gone(&tx, full, &mut receivers_gone);
                cancelled = ctrl.is_some_and(CancelToken::is_cancelled);
            }
        });
        if !receivers_gone && !cancelled && !block.is_empty() {
            obs.emit(|| Event::BlockDispatch {
                start: block.start(),
                transactions: block.len(),
            });
            send_or_note_gone(&tx, block, &mut receivers_gone);
        }
        drop(tx); // hang up: workers drain the queue and finish

        let mut results = Vec::with_capacity(handles.len());
        for handle in handles {
            match handle.join() {
                Ok(r) => results.push(r),
                Err(panic) => std::panic::resume_unwind(panic),
            }
        }
        (results, total, pass_result)
    });
    pass_result?;
    if let Some(c) = ctrl {
        c.check()?;
    }
    obs.emit(|| Event::BlockMerge {
        workers: results.len(),
        transactions: total,
    });
    Ok((results, total))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{TransactionDb, TransactionDbBuilder};

    fn sample_db(n: usize) -> TransactionDb {
        let mut b = TransactionDbBuilder::new();
        for i in 0..n {
            b.add([ItemId((i % 5) as u32), ItemId(7 + (i % 3) as u32)]);
        }
        b.build()
    }

    #[test]
    fn parallelism_resolution() {
        assert_eq!(Parallelism::Sequential.resolve(), 1);
        assert_eq!(Parallelism::Threads(4).resolve(), 4);
        assert_eq!(Parallelism::Threads(0).resolve(), 1);
        assert!(Parallelism::Auto.resolve() >= 1);
        assert_eq!(Parallelism::default(), Parallelism::Sequential);
    }

    #[test]
    fn block_roundtrips_transactions() {
        let db = sample_db(3);
        let mut block = TransactionBlock::with_start(10);
        db.pass(&mut |t| block.push(t)).unwrap();
        assert_eq!(block.len(), 3);
        assert_eq!(block.start(), 10);
        assert!(!block.is_empty());
        let collected: Vec<(u64, Vec<ItemId>)> = block
            .iter()
            .map(|t| (t.tid(), t.items().to_vec()))
            .collect();
        let mut expect = Vec::new();
        db.pass(&mut |t| expect.push((t.tid(), t.items().to_vec())))
            .unwrap();
        assert_eq!(collected, expect);
        // Blocks are themselves sources.
        assert_eq!(block.len_hint(), Some(3));
        let mut n = 0;
        TransactionSource::pass(&block, &mut |_| n += 1).unwrap();
        assert_eq!(n, 3);
        block.reset(99);
        assert!(block.is_empty());
        assert_eq!(block.start(), 99);
    }

    /// Sum of all item values, counted per block, must be independent of
    /// thread count and block size.
    #[test]
    fn executor_matches_sequential_fold() {
        let db = sample_db(257); // deliberately not a block multiple
        let mut expect = 0u64;
        db.pass(&mut |t| expect += t.items().iter().map(|i| u64::from(i.0)).sum::<u64>())
            .unwrap();
        for threads in [1, 2, 4, 8] {
            for block_size in [1, 3, 64, 1024] {
                let (parts, total) = parallel_pass(
                    &db,
                    threads,
                    block_size,
                    || 0u64,
                    |acc, block| {
                        block.iter().for_each(|t| {
                            *acc += t.items().iter().map(|i| u64::from(i.0)).sum::<u64>()
                        })
                    },
                    |acc| acc,
                )
                .unwrap();
                assert_eq!(total, 257, "threads {threads} block {block_size}");
                assert_eq!(
                    parts.iter().sum::<u64>(),
                    expect,
                    "threads {threads} block {block_size}"
                );
                assert_eq!(parts.len(), threads.max(1));
            }
        }
    }

    /// Block starts partition the stream exactly: every position is
    /// delivered once, regardless of which worker got which block.
    #[test]
    fn block_starts_cover_the_stream() {
        let db = sample_db(100);
        let (parts, total) = parallel_pass(
            &db,
            3,
            7,
            Vec::new,
            |acc: &mut Vec<u64>, block| {
                acc.extend((0..block.len()).map(|i| block.start() + i as u64))
            },
            |acc| acc,
        )
        .unwrap();
        let mut positions: Vec<u64> = parts.into_iter().flatten().collect();
        positions.sort_unstable();
        assert_eq!(total, 100);
        assert_eq!(positions, (0..100).collect::<Vec<u64>>());
    }

    #[test]
    fn source_errors_propagate() {
        struct Failing;
        impl TransactionSource for Failing {
            fn pass(&self, f: &mut dyn FnMut(Transaction<'_>)) -> io::Result<()> {
                let items = [ItemId(1)];
                f(Transaction::new(0, &items));
                Err(io::Error::new(io::ErrorKind::Other, "boom"))
            }
        }
        for threads in [1, 4] {
            let err = parallel_pass(&Failing, threads, 8, || (), |_, _| (), |_| ())
                .err()
                .map(|e| e.to_string());
            assert_eq!(err.as_deref(), Some("boom"), "threads {threads}");
        }
    }

    #[test]
    fn parallel_map_preserves_input_order() {
        let items: Vec<u32> = (0..37).collect();
        let expect: Vec<u64> = items.iter().map(|&i| u64::from(i) * 3 + 1).collect();
        for threads in [1, 2, 4, 16, 64] {
            let got = parallel_map(items.clone(), threads, |i| u64::from(i) * 3 + 1);
            assert_eq!(got, expect, "threads {threads}");
        }
        let empty: Vec<u32> = Vec::new();
        assert!(parallel_map(empty, 4, |i| i).is_empty());
    }

    #[test]
    fn empty_source_yields_one_result_per_worker() {
        let db = TransactionDbBuilder::new().build();
        let (parts, total) = parallel_pass(&db, 2, 16, || 1u32, |_, _| (), |w| w).unwrap();
        assert_eq!(total, 0);
        assert_eq!(parts, vec![1, 1]);
    }

    /// Regression for the blocked-waiters path: with every worker dead
    /// from a panic and the bounded channel full, the producer's `send`
    /// must fail (receiver dropped with the last worker) instead of
    /// blocking forever, and the join must re-raise the panic.
    #[test]
    fn worker_panic_unblocks_a_full_channel_producer() {
        // Plenty of one-transaction blocks versus a channel of depth
        // threads * 2 = 4 guarantees the producer hits a full channel.
        let db = sample_db(10_000);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            parallel_pass(&db, 2, 1, || (), |_, _| panic!("worker died"), |_| ())
        }));
        let payload = result.expect_err("the worker panic must propagate to the caller");
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .unwrap_or("<non-str payload>");
        assert_eq!(msg, "worker died");
    }

    use crate::ctrl::{cancellation_of, CancelReason, CancelToken};

    #[test]
    fn pre_cancelled_token_fails_the_pass_on_any_thread_count() {
        let db = sample_db(500);
        for threads in [1, 4] {
            let token = CancelToken::new();
            token.cancel(CancelReason::DeadlineExceeded);
            let err = parallel_pass_ctrl(
                &db,
                threads,
                16,
                Some(&token),
                &Obs::disabled(),
                || 0u64,
                |_, _| (),
                |w| w,
            )
            .unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::Interrupted, "threads {threads}");
            assert_eq!(
                cancellation_of(&err),
                Some(CancelReason::DeadlineExceeded),
                "threads {threads}"
            );
        }
    }

    #[test]
    fn cancellation_mid_pass_errors_and_the_pool_drains() {
        let db = sample_db(50_000);
        for threads in [1, 4] {
            let token = CancelToken::new();
            let trip = token.clone();
            // The worker itself trips the token after the first block it
            // sees: producer and siblings must all notice and wind down.
            let err = parallel_pass_ctrl(
                &db,
                threads,
                16,
                Some(&token),
                &Obs::disabled(),
                || (),
                move |_, _| {
                    trip.cancel(CancelReason::UserInterrupt);
                },
                |_| (),
            )
            .unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::Interrupted, "threads {threads}");
            assert_eq!(
                cancellation_of(&err),
                Some(CancelReason::UserInterrupt),
                "threads {threads}"
            );
            assert!(token.progress() > 0, "processed blocks must heartbeat");
            assert!(
                token.progress() < 50_000,
                "threads {threads}: cancellation must stop the pass early"
            );
        }
    }

    /// The pool's observability: dispatch/merge events land in the sink
    /// and worker shards merge to exact totals for any thread count.
    #[test]
    fn observed_pass_reports_blocks_and_exact_metrics() {
        use crate::obs::{metric, MetricKind, RingBufferSink};
        use std::sync::Arc;
        let db = sample_db(257);
        for threads in [1, 4] {
            let ring = Arc::new(RingBufferSink::new(1024));
            let metrics = Arc::new(Metrics::new());
            let obs = Obs::disabled()
                .with_sink(ring.clone())
                .with_metrics(metrics.clone());
            let (_, total) =
                parallel_pass_ctrl(&db, threads, 64, None, &obs, || (), |_, _| (), |w| w).unwrap();
            assert_eq!(total, 257);
            let events = ring.snapshot();
            let dispatched: u64 = events
                .iter()
                .filter_map(|e| match e {
                    Event::BlockDispatch { transactions, .. } => Some(*transactions as u64),
                    _ => None,
                })
                .sum();
            assert_eq!(dispatched, 257, "threads {threads}");
            assert!(
                matches!(
                    events.last(),
                    Some(Event::BlockMerge {
                        transactions: 257,
                        ..
                    })
                ),
                "threads {threads}: the merge closes the pass"
            );
            let snap = metrics.snapshot();
            let value = |name: &str| snap.iter().find(|(n, _, _)| n == name).map(|(_, _, v)| *v);
            assert_eq!(
                value(metric::TRANSACTIONS_SCANNED),
                Some(257),
                "threads {threads}: shards merge to the sequential total"
            );
            assert_eq!(value(metric::BLOCKS_DISPATCHED), Some(257_u64.div_ceil(64)));
            assert!(snap.iter().all(|(_, k, _)| *k == MetricKind::Counter));
        }
    }

    #[test]
    fn live_token_changes_nothing_and_heartbeats() {
        let db = sample_db(257);
        let mut expect = 0u64;
        db.pass(&mut |t| expect += t.items().iter().map(|i| u64::from(i.0)).sum::<u64>())
            .unwrap();
        for threads in [1, 4] {
            let token = CancelToken::new();
            let (parts, total) = parallel_pass_ctrl(
                &db,
                threads,
                64,
                Some(&token),
                &Obs::disabled(),
                || 0u64,
                |acc, block| {
                    block
                        .iter()
                        .for_each(|t| *acc += t.items().iter().map(|i| u64::from(i.0)).sum::<u64>())
                },
                |acc| acc,
            )
            .unwrap();
            assert_eq!(total, 257, "threads {threads}");
            assert_eq!(parts.iter().sum::<u64>(), expect, "threads {threads}");
            assert_eq!(token.progress(), 257, "threads {threads}");
            assert!(!token.is_cancelled());
        }
    }
}
