//! The observability substrate: structured trace events, a sharded
//! metrics registry, and pluggable sinks.
//!
//! Every layer of the miner used to carry its own ad-hoc telemetry —
//! `PassStats` in the counting layer, a separate bench row type, heartbeat
//! counters in the control plane, `println!` in the CLI. This module is
//! the one substrate they all share:
//!
//! * [`Event`] — a closed enum of everything the pipeline can report:
//!   pass start/end, candidate-set sizes, block dispatch/merge, fault
//!   hits, retries, checkpoint writes/loads, cancellation, salvage and
//!   bench samples. Each event serializes to exactly one JSON line via
//!   [`Event::to_json_line`]; the serializer never emits non-finite
//!   floats ([`json_num`] renders `inf`/`NaN` as `null`).
//! * [`PassStats`] — the per-pass telemetry record. This is the *one*
//!   shared pass-row type: the miner report, the CLI `--pass-stats`
//!   table and the bench JSON artifacts all consume it (the former
//!   `bench::CountingPassRow` duplicate is gone).
//! * [`Metrics`] — a lock-free registry of named monotonic counters and
//!   gauges. The hot path is a relaxed `fetch_add`; workers accumulate
//!   into private [`MetricsShard`]s and merge at pass boundaries — the
//!   same order-independent `u64` addition discipline the count merge
//!   uses, so totals are exact for any thread count.
//! * [`TraceSink`] — where events go: [`NoopSink`] (drop everything),
//!   [`JsonLinesSink`] (append one JSON object per line to a file),
//!   [`RingBufferSink`] (keep the last N events in memory for
//!   post-run derivation), [`FanoutSink`] (tee to several sinks).
//! * [`Obs`] — the cheap-to-clone handle the pipeline threads around.
//!   A disabled handle ([`Obs::default`]) costs one branch per emission
//!   point: the event-building closure passed to [`Obs::emit`] is never
//!   even invoked. The bench suite enforces a < 2% overhead budget for
//!   the fully-armed no-op configuration.

use std::collections::VecDeque;
use std::fmt;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// Telemetry for one database pass, as surfaced through the miner report,
/// the CLI `--pass-stats` table and the bench JSON artifacts.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PassStats {
    /// 1-based pass number within the run.
    pub pass: u64,
    /// What the pass was for (e.g. `"L1"`, `"L3"`, `"negative"`).
    pub label: String,
    /// Candidates counted in the pass.
    pub candidates: usize,
    /// Transactions scanned.
    pub transactions: u64,
    /// Worker threads used.
    pub threads: usize,
    /// Wall-clock time of the pass.
    pub wall: Duration,
}

/// Render a float as a JSON number with `decimals` fractional digits —
/// or as JSON `null` when the value is not finite. Every hand-rolled
/// JSON emitter in the workspace routes floats through here so a
/// zero-duration pass (speedup `inf`) or an empty sample set (`NaN`)
/// can never produce an unparseable document.
pub fn json_num(value: f64, decimals: usize) -> String {
    if value.is_finite() {
        format!("{value:.decimals$}")
    } else {
        "null".to_string()
    }
}

/// Escape `s` for inclusion inside a JSON string literal (quotes not
/// included).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// One structured trace event. The set is closed on purpose: every
/// emission point in the pipeline picks from this schema, so a consumer
/// (the bench derivations, the CI trace validator, a human with `jq`)
/// can rely on the field names documented per variant and in DESIGN.md
/// §11.
#[derive(Clone, Debug, PartialEq)]
pub enum Event {
    /// A counting pass is about to scan the database.
    PassStart {
        /// The pass label (`"L1"`, `"L3"`, `"negative"`, …).
        label: String,
        /// Candidates the pass will count.
        candidates: usize,
    },
    /// A counting pass finished; `stats` is the durable record.
    PassEnd {
        /// The completed pass's telemetry row.
        stats: PassStats,
    },
    /// A candidate set was generated (before any counting decision).
    CandidateSet {
        /// Which stage generated it (`"L2"`, `"negative"`, …).
        label: String,
        /// Number of candidates generated.
        size: usize,
    },
    /// The pass producer handed one transaction block to the worker pool.
    BlockDispatch {
        /// Stream position of the block's first transaction.
        start: u64,
        /// Transactions in the block.
        transactions: usize,
    },
    /// All workers of a pass merged their private tallies.
    BlockMerge {
        /// Worker results merged.
        workers: usize,
        /// Transactions the whole pass scanned.
        transactions: u64,
    },
    /// A deterministic fault-injection plan fired.
    FaultHit {
        /// 1-based pass the fault fired in.
        pass: u64,
        /// Transaction index the fault fired at.
        transaction: u64,
        /// The fault kind (debug rendering of the plan entry).
        kind: String,
        /// Whether the fault is transient (retryable).
        transient: bool,
    },
    /// A retry wrapper re-attempted a failed pass.
    Retry {
        /// 1-based attempt number about to run.
        attempt: u64,
        /// Retry budget (attempts allowed after the first).
        max: u64,
        /// The error that triggered the retry.
        error: String,
    },
    /// A checkpoint file was durably written.
    CheckpointWrite {
        /// File name within the checkpoint directory.
        file: String,
        /// Payload size in bytes (envelope excluded).
        bytes: u64,
    },
    /// A checkpoint file was loaded to resume a run.
    CheckpointLoad {
        /// File name within the checkpoint directory.
        file: String,
        /// What the load resumes (`"positive"` or `"negative"`).
        resumed: String,
    },
    /// The run was cancelled cooperatively.
    Cancelled {
        /// Human-readable cancellation reason.
        reason: String,
    },
    /// A salvage read dropped corrupt blocks and kept the rest.
    Salvage {
        /// Transactions recovered.
        kept: u64,
        /// Blocks (or records) dropped as corrupt.
        dropped: u64,
    },
    /// A sharded pass is about to stream one shard.
    ShardStart {
        /// 0-based shard index within the manifest.
        index: usize,
        /// The shard's path, as resolved from the manifest.
        path: String,
    },
    /// A sharded pass finished streaming one shard.
    ShardEnd {
        /// 0-based shard index within the manifest.
        index: usize,
        /// Transactions the shard delivered this pass.
        transactions: u64,
    },
    /// A shard failed strict load *and* salvage; the run continues
    /// without it (degraded completeness).
    ShardQuarantined {
        /// 0-based shard index within the manifest.
        index: usize,
        /// The shard's path, as resolved from the manifest.
        path: String,
        /// Why the shard was quarantined.
        error: String,
    },
    /// A counting backend finished building its pass-local structures
    /// (e.g. the TID-bitmap rows for one pass).
    BackendBuild {
        /// Backend name (`"bitmap"`, …).
        backend: String,
        /// Item rows (or structures) built.
        items: usize,
        /// Packed `u64` words allocated across all workers.
        words: u64,
    },
    /// A counting backend answered a pass's candidate supports.
    BackendCount {
        /// Backend name (`"bitmap"`, …).
        backend: String,
        /// Candidates counted.
        candidates: usize,
        /// `u64` words visited by AND loops across all workers.
        words: u64,
        /// Total popcount over all candidates (the sum of supports).
        ones: u64,
    },
    /// One timing sample from a benchmark repetition.
    Sample {
        /// Which configuration the sample measures.
        name: String,
        /// 0-based repetition index.
        index: usize,
        /// Wall-clock time of the repetition.
        wall: Duration,
    },
    /// The run finished (successfully or not); emitted once at the end.
    RunEnd {
        /// Database passes the run completed.
        passes: u64,
        /// Total wall-clock time.
        wall: Duration,
    },
}

impl Event {
    /// The event's snake_case tag, as serialized in the `"event"` field.
    pub fn tag(&self) -> &'static str {
        match self {
            Event::PassStart { .. } => "pass_start",
            Event::PassEnd { .. } => "pass_end",
            Event::CandidateSet { .. } => "candidate_set",
            Event::BlockDispatch { .. } => "block_dispatch",
            Event::BlockMerge { .. } => "block_merge",
            Event::FaultHit { .. } => "fault_hit",
            Event::Retry { .. } => "retry",
            Event::CheckpointWrite { .. } => "checkpoint_write",
            Event::CheckpointLoad { .. } => "checkpoint_load",
            Event::Cancelled { .. } => "cancelled",
            Event::Salvage { .. } => "salvage",
            Event::ShardStart { .. } => "shard_start",
            Event::ShardEnd { .. } => "shard_end",
            Event::ShardQuarantined { .. } => "shard_quarantined",
            Event::BackendBuild { .. } => "backend_build",
            Event::BackendCount { .. } => "backend_count",
            Event::Sample { .. } => "sample",
            Event::RunEnd { .. } => "run_end",
        }
    }

    /// Serialize to one JSON object (no trailing newline). When `t_us`
    /// is `Some`, a leading `"t_us"` field carries microseconds since
    /// the emitting sink's epoch.
    pub fn to_json_line(&self, t_us: Option<u64>) -> String {
        let mut s = String::from("{");
        if let Some(t) = t_us {
            s.push_str(&format!("\"t_us\":{t},"));
        }
        s.push_str(&format!("\"event\":\"{}\"", self.tag()));
        match self {
            Event::PassStart { label, candidates } => {
                s.push_str(&format!(
                    ",\"label\":\"{}\",\"candidates\":{candidates}",
                    json_escape(label)
                ));
            }
            Event::PassEnd { stats } => {
                s.push_str(&format!(
                    ",\"pass\":{},\"label\":\"{}\",\"candidates\":{},\"transactions\":{},\"threads\":{},\"wall_s\":{}",
                    stats.pass,
                    json_escape(&stats.label),
                    stats.candidates,
                    stats.transactions,
                    stats.threads,
                    json_num(stats.wall.as_secs_f64(), 6),
                ));
            }
            Event::CandidateSet { label, size } => {
                s.push_str(&format!(
                    ",\"label\":\"{}\",\"size\":{size}",
                    json_escape(label)
                ));
            }
            Event::BlockDispatch {
                start,
                transactions,
            } => {
                s.push_str(&format!(
                    ",\"start\":{start},\"transactions\":{transactions}"
                ));
            }
            Event::BlockMerge {
                workers,
                transactions,
            } => {
                s.push_str(&format!(
                    ",\"workers\":{workers},\"transactions\":{transactions}"
                ));
            }
            Event::FaultHit {
                pass,
                transaction,
                kind,
                transient,
            } => {
                s.push_str(&format!(
                    ",\"pass\":{pass},\"transaction\":{transaction},\"kind\":\"{}\",\"transient\":{transient}",
                    json_escape(kind)
                ));
            }
            Event::Retry {
                attempt,
                max,
                error,
            } => {
                s.push_str(&format!(
                    ",\"attempt\":{attempt},\"max\":{max},\"error\":\"{}\"",
                    json_escape(error)
                ));
            }
            Event::CheckpointWrite { file, bytes } => {
                s.push_str(&format!(
                    ",\"file\":\"{}\",\"bytes\":{bytes}",
                    json_escape(file)
                ));
            }
            Event::CheckpointLoad { file, resumed } => {
                s.push_str(&format!(
                    ",\"file\":\"{}\",\"resumed\":\"{}\"",
                    json_escape(file),
                    json_escape(resumed)
                ));
            }
            Event::Cancelled { reason } => {
                s.push_str(&format!(",\"reason\":\"{}\"", json_escape(reason)));
            }
            Event::Salvage { kept, dropped } => {
                s.push_str(&format!(",\"kept\":{kept},\"dropped\":{dropped}"));
            }
            Event::ShardStart { index, path } => {
                s.push_str(&format!(
                    ",\"index\":{index},\"path\":\"{}\"",
                    json_escape(path)
                ));
            }
            Event::ShardEnd {
                index,
                transactions,
            } => {
                s.push_str(&format!(
                    ",\"index\":{index},\"transactions\":{transactions}"
                ));
            }
            Event::ShardQuarantined { index, path, error } => {
                s.push_str(&format!(
                    ",\"index\":{index},\"path\":\"{}\",\"error\":\"{}\"",
                    json_escape(path),
                    json_escape(error)
                ));
            }
            Event::BackendBuild {
                backend,
                items,
                words,
            } => {
                s.push_str(&format!(
                    ",\"backend\":\"{}\",\"items\":{items},\"words\":{words}",
                    json_escape(backend)
                ));
            }
            Event::BackendCount {
                backend,
                candidates,
                words,
                ones,
            } => {
                s.push_str(&format!(
                    ",\"backend\":\"{}\",\"candidates\":{candidates},\"words\":{words},\"ones\":{ones}",
                    json_escape(backend)
                ));
            }
            Event::Sample { name, index, wall } => {
                s.push_str(&format!(
                    ",\"name\":\"{}\",\"index\":{index},\"wall_s\":{}",
                    json_escape(name),
                    json_num(wall.as_secs_f64(), 6)
                ));
            }
            Event::RunEnd { passes, wall } => {
                s.push_str(&format!(
                    ",\"passes\":{passes},\"wall_s\":{}",
                    json_num(wall.as_secs_f64(), 6)
                ));
            }
        }
        s.push('}');
        s
    }
}

/// Where structured events go. Implementations must tolerate concurrent
/// `record` calls (workers emit from the pool) and should make `record`
/// cheap — the hot path already pays one branch per emission point
/// before the sink is even consulted.
pub trait TraceSink: Send + Sync {
    /// Consume one event.
    fn record(&self, event: &Event);
    /// Flush any buffered output (no-op by default).
    fn flush(&self) {}
}

/// The zero-cost sink: discards every event. Used by the bench overhead
/// gate to price the fully-armed emission plumbing.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopSink;

impl TraceSink for NoopSink {
    fn record(&self, _event: &Event) {}
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Appends one JSON object per line to a file (the `--trace FILE`
/// sink). Each line carries `t_us`: microseconds since the sink was
/// created. Write errors are recorded and swallowed — tracing must
/// never fail the mine — and surfaced by [`JsonLinesSink::error`].
pub struct JsonLinesSink {
    out: Mutex<BufWriter<File>>,
    epoch: Instant,
    failed: AtomicU64,
}

impl fmt::Debug for JsonLinesSink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("JsonLinesSink")
            .field("failed", &self.failed.load(Ordering::Relaxed))
            .finish()
    }
}

impl JsonLinesSink {
    /// Create (truncate) `path` and return a sink writing to it.
    pub fn create<P: AsRef<Path>>(path: P) -> io::Result<Self> {
        let file = File::create(path)?;
        Ok(Self {
            out: Mutex::new(BufWriter::new(file)),
            epoch: Instant::now(),
            failed: AtomicU64::new(0),
        })
    }

    /// Number of events that could not be written.
    pub fn error(&self) -> u64 {
        self.failed.load(Ordering::Relaxed)
    }
}

impl TraceSink for JsonLinesSink {
    fn record(&self, event: &Event) {
        let t_us = self.epoch.elapsed().as_micros() as u64;
        let line = event.to_json_line(Some(t_us));
        let mut out = lock(&self.out);
        if writeln!(out, "{line}").is_err() {
            self.failed.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn flush(&self) {
        let _ = lock(&self.out).flush();
    }
}

/// Keeps the most recent `capacity` events in memory — the sink the
/// bench derivations and the interrupted `--pass-stats` report read
/// back after the run.
#[derive(Debug)]
pub struct RingBufferSink {
    buf: Mutex<VecDeque<Event>>,
    capacity: usize,
}

impl RingBufferSink {
    /// A ring holding at most `capacity` events (oldest evicted first).
    pub fn new(capacity: usize) -> Self {
        Self {
            buf: Mutex::new(VecDeque::new()),
            capacity: capacity.max(1),
        }
    }

    /// Copy out the buffered events, oldest first.
    pub fn snapshot(&self) -> Vec<Event> {
        lock(&self.buf).iter().cloned().collect()
    }

    /// Move out the buffered events, oldest first, leaving the ring empty.
    pub fn drain(&self) -> Vec<Event> {
        lock(&self.buf).drain(..).collect()
    }
}

impl TraceSink for RingBufferSink {
    fn record(&self, event: &Event) {
        let mut buf = lock(&self.buf);
        if buf.len() >= self.capacity {
            buf.pop_front();
        }
        buf.push_back(event.clone());
    }
}

/// Tees every event to each inner sink, in order.
pub struct FanoutSink(Vec<Arc<dyn TraceSink>>);

impl fmt::Debug for FanoutSink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "FanoutSink({} sinks)", self.0.len())
    }
}

impl FanoutSink {
    /// A sink forwarding to all of `sinks`.
    pub fn new(sinks: Vec<Arc<dyn TraceSink>>) -> Self {
        Self(sinks)
    }
}

impl TraceSink for FanoutSink {
    fn record(&self, event: &Event) {
        for sink in &self.0 {
            sink.record(event);
        }
    }

    fn flush(&self) {
        for sink in &self.0 {
            sink.flush();
        }
    }
}

/// Distinguishes how a metric slot is updated; the merge treats both as
/// plain `u64` cells.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonic: only [`Metrics::add`] (or shard absorption) touches it.
    Counter,
    /// Last-write-wins level, set with [`Metrics::set`]. Gauges are not
    /// sharded — a shard merge is additive.
    Gauge,
}

/// Handle to one registered metric slot.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MetricId(usize);

/// The most distinct metrics one registry can hold. Registration past
/// the cap is silently dropped (the returned id becomes a no-op), which
/// keeps the hot path allocation- and branch-free.
pub const MAX_METRICS: usize = 64;

/// A lock-free registry of named monotonic counters and gauges.
///
/// Registration (cold path) takes a mutex; updates (hot path) are
/// relaxed atomic operations on pre-allocated slots. Parallel workers
/// should not even do that: they accumulate into a private
/// [`MetricsShard`] and [`Metrics::absorb`] it once at the pass
/// boundary — the same discipline as the counting merge, so totals are
/// exact and order-independent for any thread count.
pub struct Metrics {
    names: Mutex<Vec<(String, MetricKind)>>,
    slots: Vec<AtomicU64>,
    len: AtomicUsize,
}

impl fmt::Debug for Metrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Metrics")
            .field("registered", &self.len.load(Ordering::Acquire))
            .finish()
    }
}

impl Default for Metrics {
    fn default() -> Self {
        Self::new()
    }
}

impl Metrics {
    /// An empty registry.
    pub fn new() -> Self {
        Self {
            names: Mutex::new(Vec::new()),
            slots: (0..MAX_METRICS).map(|_| AtomicU64::new(0)).collect(),
            len: AtomicUsize::new(0),
        }
    }

    /// Find or create the slot for `name`. Re-registering an existing
    /// name returns the same id (the first registration's kind wins).
    /// Past [`MAX_METRICS`] distinct names the returned id is inert.
    pub fn register(&self, name: &str, kind: MetricKind) -> MetricId {
        let mut names = lock(&self.names);
        if let Some(i) = names.iter().position(|(n, _)| n == name) {
            return MetricId(i);
        }
        if names.len() >= MAX_METRICS {
            return MetricId(usize::MAX);
        }
        names.push((name.to_string(), kind));
        let id = names.len() - 1;
        self.len.store(names.len(), Ordering::Release);
        MetricId(id)
    }

    /// Add `n` to a counter (relaxed; order-independent).
    pub fn add(&self, id: MetricId, n: u64) {
        if let Some(slot) = self.slots.get(id.0) {
            slot.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Set a gauge to `v` (relaxed store, last write wins).
    pub fn set(&self, id: MetricId, v: u64) {
        if let Some(slot) = self.slots.get(id.0) {
            slot.store(v, Ordering::Relaxed);
        }
    }

    /// A fresh private shard for one worker. Shards never touch shared
    /// state until [`Metrics::absorb`].
    pub fn shard(&self) -> MetricsShard {
        MetricsShard {
            counts: vec![0; MAX_METRICS],
        }
    }

    /// Merge a worker's shard into the shared slots. Additive per slot,
    /// so absorbing shards in any order yields the sequential total.
    pub fn absorb(&self, shard: &MetricsShard) {
        for (slot, &n) in self.slots.iter().zip(shard.counts.iter()) {
            if n > 0 {
                slot.fetch_add(n, Ordering::Relaxed);
            }
        }
    }

    /// Current values of every registered metric, sorted by name.
    pub fn snapshot(&self) -> Vec<(String, MetricKind, u64)> {
        let names = lock(&self.names);
        let mut out: Vec<(String, MetricKind, u64)> = names
            .iter()
            .enumerate()
            .map(|(i, (n, k))| (n.clone(), *k, self.slots[i].load(Ordering::Relaxed)))
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }
}

/// One worker's private, unsynchronized metric accumulator (counters
/// only). Created by [`Metrics::shard`], merged by [`Metrics::absorb`].
#[derive(Clone, Debug, Default)]
pub struct MetricsShard {
    counts: Vec<u64>,
}

impl MetricsShard {
    /// Add `n` to the shard's private cell for `id`.
    #[inline]
    pub fn add(&mut self, id: MetricId, n: u64) {
        if let Some(c) = self.counts.get_mut(id.0) {
            *c += n;
        }
    }
}

/// Well-known metric names emitted by the pipeline itself.
pub mod metric {
    /// Transaction blocks handed to counting workers.
    pub const BLOCKS_DISPATCHED: &str = "blocks.dispatched";
    /// Transactions scanned by counting workers.
    pub const TRANSACTIONS_SCANNED: &str = "transactions.scanned";
    /// Counting passes completed.
    pub const PASSES_COMPLETED: &str = "passes.completed";
    /// Injected faults that fired.
    pub const FAULTS_INJECTED: &str = "faults.injected";
    /// Pass retries performed.
    pub const RETRIES: &str = "retries";
    /// Checkpoint files written.
    pub const CHECKPOINTS_WRITTEN: &str = "checkpoints.written";
    /// Checkpoint files loaded for resume.
    pub const CHECKPOINTS_LOADED: &str = "checkpoints.loaded";
    /// Gauge: candidates counted by the most recent pass.
    pub const LAST_PASS_CANDIDATES: &str = "last_pass.candidates";
    /// Packed `u64` words allocated by the bitmap backend's builds.
    pub const BITMAP_WORDS_BUILT: &str = "bitmap.words.built";
    /// `u64` words visited by the bitmap backend's AND loops.
    pub const BITMAP_WORDS_ANDED: &str = "bitmap.words.anded";
    /// Total popcount the bitmap backend reported (sum of supports).
    pub const BITMAP_ONES: &str = "bitmap.ones";
}

/// The handle the pipeline threads around: an optional sink plus an
/// optional metrics registry. Cloning is two `Arc` bumps; the default
/// handle is fully disabled and every emission point collapses to one
/// `Option` branch (the event is never even built).
#[derive(Clone, Default)]
pub struct Obs {
    sink: Option<Arc<dyn TraceSink>>,
    metrics: Option<Arc<Metrics>>,
}

impl fmt::Debug for Obs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Obs")
            .field("sink", &self.sink.is_some())
            .field("metrics", &self.metrics.is_some())
            .finish()
    }
}

impl Obs {
    /// The disabled handle: no sink, no metrics, near-zero cost.
    pub fn disabled() -> Self {
        Self::default()
    }

    /// Attach a trace sink.
    pub fn with_sink(mut self, sink: Arc<dyn TraceSink>) -> Self {
        self.sink = Some(sink);
        self
    }

    /// Attach a metrics registry.
    pub fn with_metrics(mut self, metrics: Arc<Metrics>) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// `true` when a sink is attached (events will be observed).
    pub fn is_tracing(&self) -> bool {
        self.sink.is_some()
    }

    /// Build and record an event — but only when a sink is attached;
    /// otherwise the closure is never invoked and nothing allocates.
    #[inline]
    pub fn emit(&self, f: impl FnOnce() -> Event) {
        if let Some(sink) = &self.sink {
            sink.record(&f());
        }
    }

    /// The metrics registry, when one is attached.
    pub fn metrics(&self) -> Option<&Metrics> {
        self.metrics.as_deref()
    }

    /// Register `name` when metrics are enabled; `None` otherwise.
    pub fn metric(&self, name: &str, kind: MetricKind) -> Option<MetricId> {
        self.metrics.as_deref().map(|m| m.register(name, kind))
    }

    /// Bump a counter previously obtained from [`Obs::metric`].
    #[inline]
    pub fn count(&self, id: Option<MetricId>, n: u64) {
        if let (Some(m), Some(id)) = (self.metrics.as_deref(), id) {
            m.add(id, n);
        }
    }

    /// Register-and-add in one call — for cold emission points (pass
    /// boundaries, checkpoint writes) where caching a [`MetricId`] is
    /// not worth the plumbing. No-op without a registry.
    pub fn bump(&self, name: &str, n: u64) {
        if let Some(m) = self.metrics.as_deref() {
            let id = m.register(name, MetricKind::Counter);
            m.add(id, n);
        }
    }

    /// Register-and-set a gauge in one call. No-op without a registry.
    pub fn gauge(&self, name: &str, v: u64) {
        if let Some(m) = self.metrics.as_deref() {
            let id = m.register(name, MetricKind::Gauge);
            m.set(id, v);
        }
    }

    /// Flush the attached sink, if any.
    pub fn flush(&self) {
        if let Some(sink) = &self.sink {
            sink.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_serialize_to_single_json_lines() {
        let e = Event::PassEnd {
            stats: PassStats {
                pass: 2,
                label: "L2".into(),
                candidates: 7,
                transactions: 100,
                threads: 4,
                wall: Duration::from_millis(1500),
            },
        };
        let line = e.to_json_line(Some(42));
        assert_eq!(
            line,
            "{\"t_us\":42,\"event\":\"pass_end\",\"pass\":2,\"label\":\"L2\",\"candidates\":7,\"transactions\":100,\"threads\":4,\"wall_s\":1.500000}"
        );
        assert!(!line.contains('\n'));
        let bare = Event::Cancelled {
            reason: "user \"interrupt\"".into(),
        }
        .to_json_line(None);
        assert_eq!(
            bare,
            "{\"event\":\"cancelled\",\"reason\":\"user \\\"interrupt\\\"\"}"
        );
    }

    #[test]
    fn json_num_renders_non_finite_as_null() {
        assert_eq!(json_num(1.5, 3), "1.500");
        assert_eq!(json_num(f64::INFINITY, 3), "null");
        assert_eq!(json_num(f64::NEG_INFINITY, 6), "null");
        assert_eq!(json_num(f64::NAN, 2), "null");
    }

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn ring_buffer_keeps_the_newest_events() {
        let ring = RingBufferSink::new(2);
        for i in 0..4 {
            ring.record(&Event::CandidateSet {
                label: format!("L{i}"),
                size: i,
            });
        }
        let events = ring.snapshot();
        assert_eq!(events.len(), 2);
        assert_eq!(
            events[0],
            Event::CandidateSet {
                label: "L2".into(),
                size: 2
            }
        );
        assert_eq!(ring.drain().len(), 2);
        assert!(ring.snapshot().is_empty());
    }

    #[test]
    fn fanout_reaches_every_sink() {
        let a = Arc::new(RingBufferSink::new(8));
        let b = Arc::new(RingBufferSink::new(8));
        let fan = FanoutSink::new(vec![a.clone(), b.clone()]);
        fan.record(&Event::Salvage {
            kept: 1,
            dropped: 0,
        });
        fan.flush();
        assert_eq!(a.snapshot().len(), 1);
        assert_eq!(b.snapshot(), a.snapshot());
    }

    #[test]
    fn metrics_register_add_set_snapshot() {
        let m = Metrics::new();
        let c = m.register("passes", MetricKind::Counter);
        let g = m.register("gauge.x", MetricKind::Gauge);
        assert_eq!(m.register("passes", MetricKind::Counter), c);
        m.add(c, 3);
        m.add(c, 2);
        m.set(g, 7);
        m.set(g, 9);
        let snap = m.snapshot();
        assert_eq!(
            snap,
            vec![
                ("gauge.x".to_string(), MetricKind::Gauge, 9),
                ("passes".to_string(), MetricKind::Counter, 5),
            ]
        );
    }

    #[test]
    fn metrics_registration_past_the_cap_is_inert() {
        let m = Metrics::new();
        for i in 0..MAX_METRICS {
            m.register(&format!("m{i}"), MetricKind::Counter);
        }
        let over = m.register("overflow", MetricKind::Counter);
        m.add(over, 99);
        m.set(over, 99);
        assert_eq!(m.snapshot().len(), MAX_METRICS);
        assert!(m.snapshot().iter().all(|(_, _, v)| *v == 0));
    }

    #[test]
    fn shards_absorb_to_sequential_totals() {
        let m = Metrics::new();
        let id = m.register("n", MetricKind::Counter);
        let mut a = m.shard();
        let mut b = m.shard();
        a.add(id, 10);
        b.add(id, 5);
        b.add(id, 1);
        m.absorb(&b);
        m.absorb(&a);
        assert_eq!(
            m.snapshot(),
            vec![("n".to_string(), MetricKind::Counter, 16)]
        );
    }

    #[test]
    fn disabled_obs_never_builds_events() {
        let obs = Obs::disabled();
        let mut built = false;
        obs.emit(|| {
            built = true;
            Event::Salvage {
                kept: 0,
                dropped: 0,
            }
        });
        assert!(!built);
        assert!(!obs.is_tracing());
        assert!(obs.metrics().is_none());
        assert!(obs.metric("x", MetricKind::Counter).is_none());
        obs.count(None, 1);
        obs.flush();
    }

    #[test]
    fn enabled_obs_records_and_counts() {
        let ring = Arc::new(RingBufferSink::new(8));
        let metrics = Arc::new(Metrics::new());
        let obs = Obs::disabled()
            .with_sink(ring.clone())
            .with_metrics(metrics.clone());
        assert!(obs.is_tracing());
        obs.emit(|| Event::Salvage {
            kept: 3,
            dropped: 1,
        });
        let id = obs.metric(metric::RETRIES, MetricKind::Counter);
        obs.count(id, 2);
        obs.count(id, 1);
        assert_eq!(ring.snapshot().len(), 1);
        assert_eq!(
            metrics.snapshot(),
            vec![(metric::RETRIES.to_string(), MetricKind::Counter, 3)]
        );
        let clone = obs.clone();
        clone.emit(|| Event::Salvage {
            kept: 0,
            dropped: 0,
        });
        assert_eq!(ring.snapshot().len(), 2, "clones share the sink");
        assert!(format!("{obs:?}").contains("sink: true"));
    }

    #[test]
    fn jsonl_sink_writes_parseable_lines() {
        let dir = std::env::temp_dir().join(format!("obs-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.jsonl");
        let sink = JsonLinesSink::create(&path).unwrap();
        sink.record(&Event::PassStart {
            label: "L1".into(),
            candidates: 5,
        });
        sink.record(&Event::RunEnd {
            passes: 1,
            wall: Duration::from_secs(1),
        });
        sink.flush();
        assert_eq!(sink.error(), 0);
        let body = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = body.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("{\"t_us\":"));
        assert!(lines[0].contains("\"event\":\"pass_start\""));
        assert!(lines[1].ends_with('}'));
        std::fs::remove_dir_all(&dir).ok();
    }
}
