//! A compact, streamable binary file format for transaction databases.
//!
//! Layout (all integers little-endian or LEB128 varints):
//!
//! ```text
//! magic   b"NADB"            4 bytes
//! version u8 = 1
//! count   u64 LE             number of transactions
//! per transaction:
//!   tid   varint u64
//!   len   varint u64
//!   first item id            varint u32 (absent when len == 0)
//!   len-1 gaps               varint u32, gap = id[i] - id[i-1] - 1
//! ```
//!
//! Item ids within a transaction are strictly ascending (the
//! [`crate::Transaction`] invariant), so gap-minus-one coding keeps typical
//! baskets to a byte or two per item. [`FileSource`] re-reads the file for
//! every pass, which is exactly the cost model of the paper's algorithms.

use crate::scan::TransactionSource;
use crate::transaction::Transaction;
use negassoc_taxonomy::ItemId;
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};

const MAGIC: &[u8; 4] = b"NADB";
const VERSION: u8 = 1;

fn write_varint<W: Write>(w: &mut W, mut v: u64) -> io::Result<()> {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            return w.write_all(&[byte]);
        }
        w.write_all(&[byte | 0x80])?;
    }
}

fn read_varint<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let mut byte = [0u8; 1];
        r.read_exact(&mut byte)?;
        let b = byte[0];
        if shift >= 63 && b > 1 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "varint overflows u64",
            ));
        }
        v |= u64::from(b & 0x7f) << shift;
        if b & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

/// Serialize every transaction of `source` to `writer`.
pub fn write_db<S: TransactionSource, W: Write>(source: &S, writer: W) -> io::Result<()> {
    let mut w = BufWriter::new(writer);
    w.write_all(MAGIC)?;
    w.write_all(&[VERSION])?;
    let count = source.count_transactions()?;
    w.write_all(&count.to_le_bytes())?;
    let mut result = Ok(());
    source.pass(&mut |t| {
        if result.is_err() {
            return;
        }
        result = write_transaction(&mut w, t);
    })?;
    result?;
    w.flush()
}

fn write_transaction<W: Write>(w: &mut W, t: Transaction<'_>) -> io::Result<()> {
    write_varint(w, t.tid())?;
    write_varint(w, t.len() as u64)?;
    let items = t.items();
    if let Some((&first, rest)) = items.split_first() {
        write_varint(w, u64::from(first.0))?;
        let mut prev = first.0;
        for &it in rest {
            write_varint(w, u64::from(it.0 - prev - 1))?;
            prev = it.0;
        }
    }
    Ok(())
}

/// Serialize `source` to a file at `path`.
pub fn save<S: TransactionSource, P: AsRef<Path>>(source: &S, path: P) -> io::Result<()> {
    write_db(source, File::create(path)?)
}

fn read_header<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "not a NADB transaction database (bad magic)",
        ));
    }
    let mut ver = [0u8; 1];
    r.read_exact(&mut ver)?;
    if ver[0] != VERSION {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unsupported NADB version {}", ver[0]),
        ));
    }
    let mut count = [0u8; 8];
    r.read_exact(&mut count)?;
    Ok(u64::from_le_bytes(count))
}

fn scan_body<R: Read>(r: &mut R, count: u64, f: &mut dyn FnMut(Transaction<'_>)) -> io::Result<()> {
    let mut items: Vec<ItemId> = Vec::new();
    for _ in 0..count {
        let tid = read_varint(r)?;
        let len = read_varint(r)? as usize;
        items.clear();
        items.reserve(len);
        if len > 0 {
            let first = read_varint(r)?;
            let first = u32::try_from(first)
                .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "item id > u32"))?;
            items.push(ItemId(first));
            let mut prev = first;
            for _ in 1..len {
                let gap = read_varint(r)?;
                let next = u64::from(prev) + gap + 1;
                let next = u32::try_from(next)
                    .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "item id > u32"))?;
                items.push(ItemId(next));
                prev = next;
            }
        }
        f(Transaction::new(tid, &items));
    }
    Ok(())
}

/// Read a whole file into an in-memory [`crate::TransactionDb`].
pub fn load<P: AsRef<Path>>(path: P) -> io::Result<crate::TransactionDb> {
    let mut r = BufReader::new(File::open(path)?);
    let count = read_header(&mut r)?;
    let mut b = crate::TransactionDbBuilder::with_capacity(count as usize, 8);
    scan_body(&mut r, count, &mut |t| {
        b.add_with_tid(t.tid(), t.items().iter().copied())
    })?;
    Ok(b.build())
}

/// A [`TransactionSource`] that streams transactions from a NADB file,
/// re-opening it for every pass. Memory use is O(longest transaction).
pub struct FileSource {
    path: PathBuf,
    count: u64,
}

impl FileSource {
    /// Open `path`, validating the header.
    pub fn open<P: AsRef<Path>>(path: P) -> io::Result<Self> {
        let path = path.as_ref().to_owned();
        let mut r = BufReader::new(File::open(&path)?);
        let count = read_header(&mut r)?;
        Ok(Self { path, count })
    }

    /// The file path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl TransactionSource for FileSource {
    fn pass(&self, f: &mut dyn FnMut(Transaction<'_>)) -> io::Result<()> {
        let mut r = BufReader::new(File::open(&self.path)?);
        let count = read_header(&mut r)?;
        scan_body(&mut r, count, f)
    }

    fn len_hint(&self) -> Option<u64> {
        Some(self.count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TransactionDbBuilder;

    fn sample_db() -> crate::TransactionDb {
        let mut b = TransactionDbBuilder::new();
        b.add_with_tid(10, [ItemId(0), ItemId(5), ItemId(6), ItemId(1000)]);
        b.add_with_tid(11, []);
        b.add_with_tid(u64::MAX, [ItemId(u32::MAX)]);
        b.build()
    }

    #[test]
    fn varint_round_trip() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            write_varint(&mut buf, v).unwrap();
            let got = read_varint(&mut buf.as_slice()).unwrap();
            assert_eq!(got, v);
        }
    }

    #[test]
    fn varint_rejects_overflow() {
        // 10 bytes of continuation with high payload overflows u64.
        let buf = [0xffu8; 10];
        assert!(read_varint(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn memory_round_trip() {
        let db = sample_db();
        let mut buf = Vec::new();
        write_db(&db, &mut buf).unwrap();

        // Re-read via scan_body directly.
        let mut r = buf.as_slice();
        let count = read_header(&mut r).unwrap();
        assert_eq!(count, 3);
        let mut got: Vec<(u64, Vec<ItemId>)> = Vec::new();
        scan_body(&mut r, count, &mut |t| {
            got.push((t.tid(), t.items().to_vec()));
        })
        .unwrap();
        assert_eq!(got.len(), 3);
        assert_eq!(got[0].0, 10);
        assert_eq!(
            got[0].1,
            vec![ItemId(0), ItemId(5), ItemId(6), ItemId(1000)]
        );
        assert!(got[1].1.is_empty());
        assert_eq!(got[2], (u64::MAX, vec![ItemId(u32::MAX)]));
    }

    #[test]
    fn file_round_trip_and_streaming_source() {
        let db = sample_db();
        let dir = std::env::temp_dir().join("negassoc-txdb-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("rt-{}.nadb", std::process::id()));
        save(&db, &path).unwrap();

        let loaded = load(&path).unwrap();
        assert_eq!(loaded.len(), db.len());
        for (a, b) in db.iter().zip(loaded.iter()) {
            assert_eq!(a.tid(), b.tid());
            assert_eq!(a.items(), b.items());
        }

        let src = FileSource::open(&path).unwrap();
        assert_eq!(src.len_hint(), Some(3));
        assert_eq!(src.path(), path.as_path());
        let mut n = 0u64;
        src.pass(&mut |_| n += 1).unwrap();
        src.pass(&mut |_| n += 1).unwrap(); // second pass re-opens
        assert_eq!(n, 6);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn bad_magic_is_rejected() {
        let buf = b"XXXX\x01\x00\x00\x00\x00\x00\x00\x00\x00".to_vec();
        assert!(read_header(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn bad_version_is_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.push(9);
        buf.extend_from_slice(&0u64.to_le_bytes());
        assert!(read_header(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn truncated_body_is_an_error() {
        let db = sample_db();
        let mut buf = Vec::new();
        write_db(&db, &mut buf).unwrap();
        buf.truncate(buf.len() - 1);
        let mut r = buf.as_slice();
        let count = read_header(&mut r).unwrap();
        assert!(scan_body(&mut r, count, &mut |_| {}).is_err());
    }
}
