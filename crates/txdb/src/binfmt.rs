//! A compact, streamable, *checksummed* binary file format for transaction
//! databases.
//!
//! Two versions share the `NADB` magic:
//!
//! **v1** (legacy, still readable) is a bare transaction stream:
//!
//! ```text
//! magic   b"NADB"            4 bytes
//! version u8 = 1
//! count   u64 LE             number of transactions
//! per transaction:
//!   tid   varint u64
//!   len   varint u64
//!   first item id             varint u32 (absent when len == 0)
//!   len-1 gaps                varint u32, gap = id[i] - id[i-1] - 1
//! ```
//!
//! **v2** (written by default) frames the same per-transaction encoding
//! into CRC-32-checksummed blocks so a flipped bit or truncated write is
//! *detected* instead of silently corrupting supports:
//!
//! ```text
//! magic   b"NADB"            4 bytes
//! version u8 = 2
//! count   u64 LE             number of transactions
//! per block:
//!   payload_len u32 LE       bytes of payload
//!   tx_count    u32 LE       transactions in this block
//!   first_tid   u64 LE       smallest TID in the block
//!   last_tid    u64 LE       largest TID in the block
//!   payload_crc u32 LE       CRC-32 (IEEE) of the payload bytes
//!   header_crc  u32 LE       CRC-32 of the preceding 28 header bytes
//!   payload                  tx_count transactions, v1 encoding
//! ```
//!
//! Readers run in one of two modes: **strict** (the default — the first
//! bad block fails the whole read with a typed [`CorruptBlock`] wrapped in
//! the `io::Error`) or **salvage** ([`load_salvage`] — corrupt blocks are
//! skipped and reported in a [`SalvageReport`] naming exactly which TIDs
//! were lost). The TID range in the block header survives payload
//! corruption, so the loss report is exact whenever the block's TIDs were
//! contiguous (the builder default) and a tight range+count otherwise.
//!
//! Item ids within a transaction are strictly ascending (the
//! [`crate::Transaction`] invariant), so gap-minus-one coding keeps typical
//! baskets to a byte or two per item. [`FileSource`] re-reads the file for
//! every pass, which is exactly the cost model of the paper's algorithms;
//! give it a [`RetryPolicy`](crate::fault::RetryPolicy) and transient
//! faults heal mid-pass with exactly-once delivery.

use crate::crc32::crc32;
use crate::fault::{is_transient, RetryPolicy};
use crate::scan::TransactionSource;
use crate::transaction::Transaction;
use negassoc_taxonomy::ItemId;
use std::fmt;
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};

const MAGIC: &[u8; 4] = b"NADB";
/// The legacy, checksum-free format version.
pub const VERSION_V1: u8 = 1;
/// The framed, per-block-checksummed format version (written by default).
pub const VERSION_V2: u8 = 2;

/// Transactions per v2 block (flushed earlier if the payload outgrows
/// [`BLOCK_PAYLOAD_TARGET`]).
const BLOCK_TX_TARGET: usize = 512;
/// Soft payload-size bound per v2 block.
const BLOCK_PAYLOAD_TARGET: usize = 64 * 1024;
/// Hard upper bound a reader will allocate for one block's payload; a
/// (checksum-valid) header claiming more is rejected as corrupt.
const BLOCK_PAYLOAD_MAX: u32 = 1 << 28;

/// Size of the v2 block header on disk, including its own CRC.
const BLOCK_HEADER_LEN: usize = 32;

/// Cap on transaction-count-driven pre-reservations while loading. The
/// file header's count is not checksummed, so it may lie; loaders grow on
/// demand beyond this.
const PREALLOC_TX_CAP: u64 = 1 << 20;

fn write_varint<W: Write>(w: &mut W, mut v: u64) -> io::Result<()> {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            return w.write_all(&[byte]);
        }
        w.write_all(&[byte | 0x80])?;
    }
}

fn read_varint<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    let mut continued = false;
    loop {
        let mut byte = [0u8; 1];
        r.read_exact(&mut byte)?;
        let b = byte[0];
        if shift >= 63 && b > 1 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "varint overflows u64",
            ));
        }
        if b & 0x80 == 0 {
            // Canonical form: a multi-byte encoding never ends in a zero
            // payload byte (that is an overlong spelling of a shorter
            // value, e.g. [0x80, 0x00] for 0).
            if continued && b == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "non-canonical (overlong) varint",
                ));
            }
            return Ok(v | u64::from(b) << shift);
        }
        v |= u64::from(b & 0x7f) << shift;
        continued = true;
        shift += 7;
    }
}

/// Serialize every transaction of `source` to `writer` in the current
/// (v2, checksummed) format.
pub fn write_db<S: TransactionSource, W: Write>(source: &S, writer: W) -> io::Result<()> {
    let mut w = BufWriter::new(writer);
    w.write_all(MAGIC)?;
    w.write_all(&[VERSION_V2])?;
    let count = source.count_transactions()?;
    w.write_all(&count.to_le_bytes())?;

    let mut block = BlockBuffer::new();
    let mut result = Ok(());
    source.pass(&mut |t| {
        if result.is_err() {
            return;
        }
        result = block.push(t).and_then(|()| {
            if block.is_full() {
                block.flush(&mut w)
            } else {
                Ok(())
            }
        });
    })?;
    result?;
    block.flush(&mut w)?;
    w.flush()
}

/// Serialize in the legacy v1 (checksum-free) layout. Exists so
/// compatibility tests and old-format producers stay exercisable; new
/// files should use [`write_db`].
pub fn write_db_v1<S: TransactionSource, W: Write>(source: &S, writer: W) -> io::Result<()> {
    let mut w = BufWriter::new(writer);
    w.write_all(MAGIC)?;
    w.write_all(&[VERSION_V1])?;
    let count = source.count_transactions()?;
    w.write_all(&count.to_le_bytes())?;
    let mut result = Ok(());
    source.pass(&mut |t| {
        if result.is_err() {
            return;
        }
        result = write_transaction(&mut w, t);
    })?;
    result?;
    w.flush()
}

/// Accumulates transactions into one v2 block.
struct BlockBuffer {
    payload: Vec<u8>,
    tx_count: u32,
    first_tid: u64,
    last_tid: u64,
}

impl BlockBuffer {
    fn new() -> Self {
        Self {
            payload: Vec::with_capacity(BLOCK_PAYLOAD_TARGET),
            tx_count: 0,
            first_tid: 0,
            last_tid: 0,
        }
    }

    fn push(&mut self, t: Transaction<'_>) -> io::Result<()> {
        if self.tx_count == 0 {
            self.first_tid = t.tid();
            self.last_tid = t.tid();
        } else {
            self.first_tid = self.first_tid.min(t.tid());
            self.last_tid = self.last_tid.max(t.tid());
        }
        self.tx_count += 1;
        write_transaction(&mut self.payload, t)
    }

    fn is_full(&self) -> bool {
        self.tx_count as usize >= BLOCK_TX_TARGET || self.payload.len() >= BLOCK_PAYLOAD_TARGET
    }

    fn flush<W: Write>(&mut self, w: &mut W) -> io::Result<()> {
        if self.tx_count == 0 {
            return Ok(());
        }
        let mut header = [0u8; BLOCK_HEADER_LEN - 4];
        header[0..4].copy_from_slice(&(self.payload.len() as u32).to_le_bytes());
        header[4..8].copy_from_slice(&self.tx_count.to_le_bytes());
        header[8..16].copy_from_slice(&self.first_tid.to_le_bytes());
        header[16..24].copy_from_slice(&self.last_tid.to_le_bytes());
        header[24..28].copy_from_slice(&crc32(&self.payload).to_le_bytes());
        w.write_all(&header)?;
        w.write_all(&crc32(&header).to_le_bytes())?;
        w.write_all(&self.payload)?;
        self.payload.clear();
        self.tx_count = 0;
        Ok(())
    }
}

fn write_transaction<W: Write>(w: &mut W, t: Transaction<'_>) -> io::Result<()> {
    write_varint(w, t.tid())?;
    write_varint(w, t.len() as u64)?;
    let items = t.items();
    if let Some((&first, rest)) = items.split_first() {
        write_varint(w, u64::from(first.0))?;
        let mut prev = first.0;
        for &it in rest {
            write_varint(w, u64::from(it.0 - prev - 1))?;
            prev = it.0;
        }
    }
    Ok(())
}

/// Serialize `source` to a file at `path` (v2, checksummed).
pub fn save<S: TransactionSource, P: AsRef<Path>>(source: &S, path: P) -> io::Result<()> {
    write_db(source, File::create(path)?)
}

/// Serialize `source` to a file at `path` in the legacy v1 layout.
pub fn save_v1<S: TransactionSource, P: AsRef<Path>>(source: &S, path: P) -> io::Result<()> {
    write_db_v1(source, File::create(path)?)
}

/// A corrupt v2 block, as detected by its checksums. Wrapped inside the
/// `io::Error` a strict read fails with, so callers (e.g. the CLI) can
/// downcast and point at `--salvage`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CorruptBlock {
    /// 0-based block index within the file.
    pub index: u64,
    /// Smallest TID the block claimed to hold (from the block header;
    /// trustworthy when the header checksum verified).
    pub first_tid: u64,
    /// Largest TID the block claimed to hold.
    pub last_tid: u64,
    /// Transactions the block claimed to hold.
    pub tx_count: u32,
    /// Whether the block *header* failed its checksum (the payload cannot
    /// even be located; salvage stops here).
    pub header_corrupt: bool,
}

impl fmt::Display for CorruptBlock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.header_corrupt {
            write!(f, "v2 header checksum mismatch in block {}", self.index)
        } else {
            write!(
                f,
                "v2 checksum mismatch in block {} ({} transactions, TIDs {}..={})",
                self.index, self.tx_count, self.first_tid, self.last_tid
            )
        }
    }
}

impl std::error::Error for CorruptBlock {}

impl From<CorruptBlock> for io::Error {
    fn from(c: CorruptBlock) -> Self {
        io::Error::new(io::ErrorKind::InvalidData, c)
    }
}

/// What a salvage read lost. `Display` renders the exact-TID report.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SalvageReport {
    /// Transactions successfully recovered.
    pub recovered: u64,
    /// Blocks skipped because their payload checksum failed.
    pub lost_blocks: Vec<CorruptBlock>,
    /// Transactions lost in an unreadable tail (truncated mid-block or a
    /// corrupt header that made further framing untrustworthy).
    pub lost_tail: u64,
}

impl SalvageReport {
    /// Total transactions lost.
    pub fn lost_transactions(&self) -> u64 {
        self.lost_blocks
            .iter()
            .map(|b| u64::from(b.tx_count))
            .sum::<u64>()
            + self.lost_tail
    }

    /// `true` when nothing was lost.
    pub fn is_clean(&self) -> bool {
        self.lost_blocks.is_empty() && self.lost_tail == 0
    }

    /// Fold `other` into this report, so per-shard (or per-file) salvage
    /// reports combine into one run-level report. Recovered and tail
    /// counts add; lost blocks concatenate in merge order (each block
    /// keeps its within-file index — `Display` groups adjacent runs, so a
    /// wholly-lost file renders as one line, not one per block).
    pub fn merge(&mut self, other: SalvageReport) {
        self.recovered += other.recovered;
        self.lost_blocks.extend(other.lost_blocks);
        self.lost_tail += other.lost_tail;
    }
}

impl fmt::Display for SalvageReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_clean() {
            return write!(f, "salvage: all {} transactions recovered", self.recovered);
        }
        writeln!(
            f,
            "salvage: recovered {} transactions, lost {}",
            self.recovered,
            self.lost_transactions()
        )?;
        // Render maximal runs of adjacent lost blocks (consecutive block
        // indexes whose TID ranges abut) as one line each, so a burst of
        // corruption doesn't produce hundreds of single-block lines.
        let mut i = 0;
        while i < self.lost_blocks.len() {
            let mut j = i;
            while j + 1 < self.lost_blocks.len()
                && self.lost_blocks[j + 1].index == self.lost_blocks[j].index + 1
                && Some(self.lost_blocks[j + 1].first_tid)
                    == self.lost_blocks[j].last_tid.checked_add(1)
            {
                j += 1;
            }
            let (first, last) = (&self.lost_blocks[i], &self.lost_blocks[j]);
            let lost: u64 = self.lost_blocks[i..=j]
                .iter()
                .map(|b| u64::from(b.tx_count))
                .sum();
            // A corrupt payload's CRC-valid header can still carry garbage
            // TIDs (e.g. last < first from a zeroed range); the span math
            // must degrade to "sparse range", never underflow.
            let exact = last
                .last_tid
                .checked_sub(first.first_tid)
                .and_then(|span| span.checked_add(1))
                == Some(lost);
            let sparse = if exact { "" } else { " (sparse range)" };
            if i == j {
                writeln!(
                    f,
                    "  block {}: lost {} transactions, TIDs {}..={}{}",
                    first.index, lost, first.first_tid, last.last_tid, sparse
                )?;
            } else {
                writeln!(
                    f,
                    "  blocks {}..={}: lost {} transactions, TIDs {}..={}{}",
                    first.index, last.index, lost, first.first_tid, last.last_tid, sparse
                )?;
            }
            i = j + 1;
        }
        if self.lost_tail > 0 {
            writeln!(f, "  tail: {} transactions unrecoverable", self.lost_tail)?;
        }
        Ok(())
    }
}

fn read_header<R: Read>(r: &mut R) -> io::Result<(u8, u64)> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "not a NADB transaction database (bad magic)",
        ));
    }
    let mut ver = [0u8; 1];
    r.read_exact(&mut ver)?;
    if ver[0] != VERSION_V1 && ver[0] != VERSION_V2 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unsupported NADB version {}", ver[0]),
        ));
    }
    let mut count = [0u8; 8];
    r.read_exact(&mut count)?;
    Ok((ver[0], u64::from_le_bytes(count)))
}

/// Decode `count` v1-encoded transactions from `r`.
fn scan_body<R: Read>(r: &mut R, count: u64, f: &mut dyn FnMut(Transaction<'_>)) -> io::Result<()> {
    let mut items: Vec<ItemId> = Vec::new();
    for _ in 0..count {
        scan_one(r, &mut items, f)?;
    }
    Ok(())
}

fn scan_one<R: Read>(
    r: &mut R,
    items: &mut Vec<ItemId>,
    f: &mut dyn FnMut(Transaction<'_>),
) -> io::Result<()> {
    let tid = read_varint(r)?;
    let len = read_varint(r)? as usize;
    items.clear();
    // A corrupt length must not trigger a huge reservation; items arrive
    // one varint at a time, so growth on demand is O(actual data).
    items.reserve(len.min(4096));
    if len > 0 {
        let first = read_varint(r)?;
        let first = u32::try_from(first)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "item id > u32"))?;
        items.push(ItemId(first));
        let mut prev = first;
        for _ in 1..len {
            let gap = read_varint(r)?;
            let next = u64::from(prev) + gap + 1;
            let next = u32::try_from(next)
                .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "item id > u32"))?;
            items.push(ItemId(next));
            prev = next;
        }
    }
    f(Transaction::new(tid, items));
    Ok(())
}

/// One decoded v2 block header.
struct BlockHeader {
    payload_len: u32,
    tx_count: u32,
    first_tid: u64,
    last_tid: u64,
    payload_crc: u32,
}

/// Read one block header. `Ok(None)` at clean EOF (no more blocks);
/// `Err` with [`CorruptBlock`] when the header checksum fails.
fn read_block_header<R: Read>(r: &mut R, index: u64) -> io::Result<Option<BlockHeader>> {
    let mut raw = [0u8; BLOCK_HEADER_LEN];
    match r.read_exact(&mut raw[..1]) {
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        other => other?,
    }
    r.read_exact(&mut raw[1..])?;
    let stored_crc = u32::from_le_bytes([raw[28], raw[29], raw[30], raw[31]]);
    if crc32(&raw[..28]) != stored_crc {
        return Err(CorruptBlock {
            index,
            first_tid: 0,
            last_tid: 0,
            tx_count: 0,
            header_corrupt: true,
        }
        .into());
    }
    let header = BlockHeader {
        payload_len: u32::from_le_bytes([raw[0], raw[1], raw[2], raw[3]]),
        tx_count: u32::from_le_bytes([raw[4], raw[5], raw[6], raw[7]]),
        first_tid: u64::from_le_bytes([
            raw[8], raw[9], raw[10], raw[11], raw[12], raw[13], raw[14], raw[15],
        ]),
        last_tid: u64::from_le_bytes([
            raw[16], raw[17], raw[18], raw[19], raw[20], raw[21], raw[22], raw[23],
        ]),
        payload_crc: u32::from_le_bytes([raw[24], raw[25], raw[26], raw[27]]),
    };
    if header.payload_len > BLOCK_PAYLOAD_MAX {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("block {index} claims an implausible payload size"),
        ));
    }
    Ok(Some(header))
}

/// Strict v2 scan: verify every checksum, fail on the first bad block.
fn scan_v2_strict<R: Read>(
    r: &mut R,
    count: u64,
    f: &mut dyn FnMut(Transaction<'_>),
) -> io::Result<()> {
    let mut delivered = 0u64;
    let mut index = 0u64;
    let mut payload = Vec::new();
    let mut items: Vec<ItemId> = Vec::new();
    while delivered < count {
        let Some(header) = read_block_header(r, index)? else {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                // negassoc-lint: allow(L012) -- error construction on a path that returns immediately; at most one alloc per scan
                format!("file ends after {delivered} of {count} transactions"),
            ));
        };
        payload.resize(header.payload_len as usize, 0);
        r.read_exact(&mut payload)?;
        if crc32(&payload) != header.payload_crc {
            return Err(CorruptBlock {
                index,
                first_tid: header.first_tid,
                last_tid: header.last_tid,
                tx_count: header.tx_count,
                header_corrupt: false,
            }
            .into());
        }
        let mut slice = payload.as_slice();
        for _ in 0..header.tx_count {
            scan_one(&mut slice, &mut items, f)?;
        }
        if !slice.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                // negassoc-lint: allow(L012) -- error construction on a path that returns immediately; at most one alloc per scan
                format!("block {index} has trailing bytes after its transactions"),
            ));
        }
        delivered += u64::from(header.tx_count);
        index += 1;
    }
    if delivered != count {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("blocks hold {delivered} transactions, header promised {count}"),
        ));
    }
    Ok(())
}

/// Salvage v2 scan: skip payload-corrupt blocks, stop (recording the tail)
/// at a corrupt header or truncation.
fn scan_v2_salvage<R: Read>(
    r: &mut R,
    count: u64,
    f: &mut dyn FnMut(Transaction<'_>),
) -> io::Result<SalvageReport> {
    let mut report = SalvageReport::default();
    let mut index = 0u64;
    let mut payload = Vec::new();
    let mut items: Vec<ItemId> = Vec::new();
    let mut accounted = 0u64; // delivered + known-lost
    while accounted < count {
        let header = match read_block_header(r, index) {
            Ok(Some(h)) => h,
            // Clean EOF or a corrupt/truncated header: framing beyond this
            // point is untrustworthy, everything remaining is the tail.
            Ok(None) | Err(_) => break,
        };
        payload.resize(header.payload_len as usize, 0);
        if r.read_exact(&mut payload).is_err() {
            // Truncated mid-payload; the header still names the loss.
            report.lost_blocks.push(CorruptBlock {
                index,
                first_tid: header.first_tid,
                last_tid: header.last_tid,
                tx_count: header.tx_count,
                header_corrupt: false,
            });
            accounted += u64::from(header.tx_count);
            break;
        }
        let mut block_ok = crc32(&payload) == header.payload_crc;
        if block_ok {
            // A checksum-valid payload that fails to decode is still a
            // loss (written by a broken producer); treat like corruption.
            let mut slice = payload.as_slice();
            // Each encoded transaction is ≥ 2 bytes, so the payload size
            // bounds any honest tx_count; don't trust the claim further.
            let staged_cap = (header.tx_count as usize).min(payload.len() / 2 + 1);
            // negassoc-lint: allow(L012) -- salvage-only staging: one buffer per *corrupt-file* block, never on the certified fast path
            let mut staged: Vec<(u64, Vec<ItemId>)> = Vec::with_capacity(staged_cap);
            for _ in 0..header.tx_count {
                match scan_one(&mut slice, &mut items, &mut |t| {
                    staged.push((t.tid(), t.items().to_vec()))
                }) {
                    Ok(()) => {}
                    Err(_) => {
                        block_ok = false;
                        break;
                    }
                }
            }
            if block_ok {
                for (tid, its) in &staged {
                    f(Transaction::new(*tid, its));
                }
                report.recovered += u64::from(header.tx_count);
            }
        }
        if !block_ok {
            report.lost_blocks.push(CorruptBlock {
                index,
                first_tid: header.first_tid,
                last_tid: header.last_tid,
                tx_count: header.tx_count,
                header_corrupt: false,
            });
        }
        accounted += u64::from(header.tx_count);
        index += 1;
    }
    // `accounted` = recovered + known-lost; whatever the file header
    // promised beyond that is unreadable tail.
    report.lost_tail = count.saturating_sub(accounted);
    Ok(report)
}

/// Read a whole file into an in-memory [`crate::TransactionDb`] (strict:
/// any v2 checksum failure is an error carrying a [`CorruptBlock`]).
pub fn load<P: AsRef<Path>>(path: P) -> io::Result<crate::TransactionDb> {
    let mut r = BufReader::new(File::open(path)?);
    let (version, count) = read_header(&mut r)?;
    // The count field is not checksummed, so it only sizes a *bounded*
    // pre-reservation — a corrupted count must not abort the allocator.
    let mut b = crate::TransactionDbBuilder::with_capacity(count.min(PREALLOC_TX_CAP) as usize, 8);
    let mut add = |t: Transaction<'_>| b.add_with_tid(t.tid(), t.items().iter().copied());
    match version {
        VERSION_V1 => scan_body(&mut r, count, &mut add)?,
        _ => scan_v2_strict(&mut r, count, &mut add)?,
    }
    Ok(b.build())
}

/// Read a (v2) file, skipping corrupt blocks. Returns what could be
/// recovered plus the exact loss report. v1 files carry no checksums, so
/// salvage refuses them rather than pretend to verify anything.
pub fn load_salvage<P: AsRef<Path>>(path: P) -> io::Result<(crate::TransactionDb, SalvageReport)> {
    let mut r = BufReader::new(File::open(path)?);
    let (version, count) = read_header(&mut r)?;
    if version == VERSION_V1 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "salvage needs the checksummed v2 format; this is a v1 file \
             (rewrite it with `write_db` to upgrade)",
        ));
    }
    let mut b = crate::TransactionDbBuilder::with_capacity(count.min(PREALLOC_TX_CAP) as usize, 8);
    let report = scan_v2_salvage(&mut r, count, &mut |t| {
        b.add_with_tid(t.tid(), t.items().iter().copied())
    })?;
    Ok((b.build(), report))
}

/// One streaming salvage pass over a (v2) file: deliver every
/// recoverable transaction to `f` in file order, skipping corrupt
/// blocks, and return the loss report. Memory stays O(one block) — this
/// is the salvage counterpart of [`FileSource`]'s strict pass, used by
/// the shard layer to stream a damaged shard without materializing it.
/// Salvage is deterministic: repeated passes over unchanged bytes
/// deliver the same transactions and produce an equal report. v1 files
/// carry no checksums, so salvage refuses them (like [`load_salvage`]).
pub fn salvage_pass<P: AsRef<Path>>(
    path: P,
    f: &mut dyn FnMut(Transaction<'_>),
) -> io::Result<SalvageReport> {
    let mut r = BufReader::new(File::open(path)?);
    let (version, count) = read_header(&mut r)?;
    if version == VERSION_V1 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "salvage needs the checksummed v2 format; this is a v1 file \
             (rewrite it with `write_db` to upgrade)",
        ));
    }
    scan_v2_salvage(&mut r, count, f)
}

/// Checksum-verify every block of a v2 file (or byte-decode a v1 file)
/// without materializing it. Returns the transaction count on success.
pub fn verify<P: AsRef<Path>>(path: P) -> io::Result<u64> {
    let src = FileSource::open(path)?;
    let mut n = 0u64;
    src.pass(&mut |_| n += 1)?;
    Ok(n)
}

/// A [`TransactionSource`] that streams transactions from a NADB file,
/// re-opening it for every pass. Memory use is O(one block). All v2
/// checksums are verified on every pass (strict mode), so a bad sector
/// surfaces as an error instead of a silently wrong support count.
///
/// With a [`RetryPolicy`], a failed pass is retried from the top of the
/// file with the already-delivered prefix skipped, so the observer sees
/// every transaction exactly once even when a transient fault interrupts
/// a pass. Non-transient failures (checksum mismatches, decode errors)
/// are never retried — rereading corrupt bytes cannot heal them.
pub struct FileSource {
    path: PathBuf,
    count: u64,
    version: u8,
    retry: Option<RetryPolicy>,
}

impl FileSource {
    /// Open `path`, validating the header (either version).
    pub fn open<P: AsRef<Path>>(path: P) -> io::Result<Self> {
        let path = path.as_ref().to_owned();
        let mut r = BufReader::new(File::open(&path)?);
        let (version, count) = read_header(&mut r)?;
        Ok(Self {
            path,
            count,
            version,
            retry: None,
        })
    }

    /// Retry failed passes under `policy` (see [`crate::fault`]).
    pub fn with_retry(mut self, policy: RetryPolicy) -> Self {
        self.retry = Some(policy);
        self
    }

    /// The file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The on-disk format version (1 or 2).
    pub fn version(&self) -> u8 {
        self.version
    }

    /// One strict pass, delivering transactions starting at `skip` (the
    /// first `skip` transactions are decoded and checksum-verified but not
    /// delivered — the resume path after a transient fault).
    fn pass_from(&self, skip: u64, f: &mut dyn FnMut(Transaction<'_>)) -> io::Result<()> {
        let mut r = BufReader::new(File::open(&self.path)?);
        let (version, count) = read_header(&mut r)?;
        let mut seen = 0u64;
        let mut deliver = |t: Transaction<'_>| {
            seen += 1;
            if seen > skip {
                f(t);
            }
        };
        match version {
            VERSION_V1 => scan_body(&mut r, count, &mut deliver),
            _ => scan_v2_strict(&mut r, count, &mut deliver),
        }
    }
}

impl TransactionSource for FileSource {
    fn pass(&self, f: &mut dyn FnMut(Transaction<'_>)) -> io::Result<()> {
        let Some(policy) = self.retry else {
            return self.pass_from(0, f);
        };
        let mut delivered = 0u64;
        let mut attempt = 0u32;
        loop {
            let result = self.pass_from(delivered, &mut |t| {
                delivered += 1;
                f(t);
            });
            match result {
                Ok(()) => return Ok(()),
                Err(e) if attempt < policy.max_retries && is_transient(&e) => {
                    policy.sleep(attempt);
                    attempt += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }

    fn len_hint(&self) -> Option<u64> {
        Some(self.count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TransactionDbBuilder;

    fn sample_db() -> crate::TransactionDb {
        let mut b = TransactionDbBuilder::new();
        b.add_with_tid(10, [ItemId(0), ItemId(5), ItemId(6), ItemId(1000)]);
        b.add_with_tid(11, []);
        b.add_with_tid(u64::MAX, [ItemId(u32::MAX)]);
        b.build()
    }

    /// A larger DB spanning several v2 blocks.
    fn multi_block_db(n: u64) -> crate::TransactionDb {
        let mut b = TransactionDbBuilder::new();
        for i in 0..n {
            b.add_with_tid(i, [ItemId(i as u32 % 50), ItemId(100 + i as u32 % 10)]);
        }
        b.build()
    }

    /// A unique temp path cleaned up on drop.
    struct TempFile(PathBuf);

    impl TempFile {
        fn new(name: &str) -> Self {
            use std::sync::atomic::{AtomicU64, Ordering};
            static SEQ: AtomicU64 = AtomicU64::new(0);
            let n = SEQ.fetch_add(1, Ordering::Relaxed);
            TempFile(
                std::env::temp_dir()
                    .join(format!("negassoc-binfmt-{}-{n}-{name}", std::process::id())),
            )
        }

        fn path(&self) -> &Path {
            &self.0
        }
    }

    impl Drop for TempFile {
        fn drop(&mut self) {
            std::fs::remove_file(&self.0).ok();
        }
    }

    #[test]
    fn salvage_display_survives_garbage_tid_ranges() {
        // A CRC-valid header over garbage can carry last_tid < first_tid
        // or last_tid == u64::MAX; the range report must render as a
        // sparse range instead of underflowing/overflowing the span math.
        let inverted = SalvageReport {
            recovered: 1,
            lost_blocks: vec![CorruptBlock {
                index: 0,
                first_tid: 10,
                last_tid: 3,
                tx_count: 4,
                header_corrupt: false,
            }],
            lost_tail: 0,
        };
        let text = inverted.to_string();
        assert!(text.contains("TIDs 10..=3 (sparse range)"), "got: {text}");

        let saturated = SalvageReport {
            recovered: 0,
            lost_blocks: vec![
                CorruptBlock {
                    index: 0,
                    first_tid: 0,
                    last_tid: u64::MAX,
                    tx_count: 1,
                    header_corrupt: false,
                },
                CorruptBlock {
                    index: 1,
                    first_tid: 0,
                    last_tid: 0,
                    tx_count: 1,
                    header_corrupt: false,
                },
            ],
            lost_tail: 0,
        };
        // Adjacent-run grouping must not wrap past u64::MAX either.
        let text = saturated.to_string();
        assert!(text.contains("block 0"), "got: {text}");
        assert!(text.contains("(sparse range)"), "got: {text}");
    }

    #[test]
    fn varint_round_trip() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            write_varint(&mut buf, v).unwrap();
            let got = read_varint(&mut buf.as_slice()).unwrap();
            assert_eq!(got, v);
        }
    }

    #[test]
    fn varint_rejects_overflow() {
        // 10 bytes of continuation with high payload overflows u64.
        let buf = [0xffu8; 10];
        assert!(read_varint(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn varint_rejects_overlong_encodings() {
        // [0x80, 0x00] is an overlong spelling of 0.
        assert!(read_varint(&mut [0x80u8, 0x00].as_slice()).is_err());
        // [0x81, 0x00] overlong 1.
        assert!(read_varint(&mut [0x81u8, 0x00].as_slice()).is_err());
        // [0xff, 0x00] overlong 127.
        assert!(read_varint(&mut [0xffu8, 0x00].as_slice()).is_err());
        // Deep overlong: 0 stretched to nine bytes.
        let deep = [0x80u8, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x00];
        assert!(read_varint(&mut deep.as_slice()).is_err());
        // The canonical single zero byte is fine.
        assert_eq!(read_varint(&mut [0x00u8].as_slice()).unwrap(), 0);
        // u64::MAX's canonical 10-byte form still decodes.
        let mut buf = Vec::new();
        write_varint(&mut buf, u64::MAX).unwrap();
        assert_eq!(read_varint(&mut buf.as_slice()).unwrap(), u64::MAX);
    }

    #[test]
    fn memory_round_trip_v2() {
        let db = sample_db();
        let mut buf = Vec::new();
        write_db(&db, &mut buf).unwrap();
        assert_eq!(buf[4], VERSION_V2);

        let mut r = buf.as_slice();
        let (version, count) = read_header(&mut r).unwrap();
        assert_eq!(version, VERSION_V2);
        assert_eq!(count, 3);
        let mut got: Vec<(u64, Vec<ItemId>)> = Vec::new();
        scan_v2_strict(&mut r, count, &mut |t| {
            got.push((t.tid(), t.items().to_vec()));
        })
        .unwrap();
        assert_eq!(got.len(), 3);
        assert_eq!(got[0].0, 10);
        assert_eq!(
            got[0].1,
            vec![ItemId(0), ItemId(5), ItemId(6), ItemId(1000)]
        );
        assert!(got[1].1.is_empty());
        assert_eq!(got[2], (u64::MAX, vec![ItemId(u32::MAX)]));
    }

    #[test]
    fn v1_files_still_load() {
        let db = sample_db();
        let f = TempFile::new("v1.nadb");
        save_v1(&db, f.path()).unwrap();
        let loaded = load(f.path()).unwrap();
        assert_eq!(loaded.len(), db.len());
        for (a, b) in db.iter().zip(loaded.iter()) {
            assert_eq!(a.tid(), b.tid());
            assert_eq!(a.items(), b.items());
        }
        let src = FileSource::open(f.path()).unwrap();
        assert_eq!(src.version(), VERSION_V1);
        let mut n = 0u64;
        src.pass(&mut |_| n += 1).unwrap();
        assert_eq!(n, 3);
    }

    #[test]
    fn file_round_trip_and_streaming_source() {
        let db = sample_db();
        let f = TempFile::new("rt.nadb");
        save(&db, f.path()).unwrap();

        let loaded = load(f.path()).unwrap();
        assert_eq!(loaded.len(), db.len());
        for (a, b) in db.iter().zip(loaded.iter()) {
            assert_eq!(a.tid(), b.tid());
            assert_eq!(a.items(), b.items());
        }

        let src = FileSource::open(f.path()).unwrap();
        assert_eq!(src.len_hint(), Some(3));
        assert_eq!(src.path(), f.path());
        assert_eq!(src.version(), VERSION_V2);
        let mut n = 0u64;
        src.pass(&mut |_| n += 1).unwrap();
        src.pass(&mut |_| n += 1).unwrap(); // second pass re-opens
        assert_eq!(n, 6);
    }

    #[test]
    fn multi_block_files_round_trip() {
        let db = multi_block_db(2000); // > 3 blocks at 512 tx/block
        let f = TempFile::new("multi.nadb");
        save(&db, f.path()).unwrap();
        let loaded = load(f.path()).unwrap();
        assert_eq!(loaded.len(), 2000);
        for (a, b) in db.iter().zip(loaded.iter()) {
            assert_eq!(a.tid(), b.tid());
            assert_eq!(a.items(), b.items());
        }
        assert_eq!(verify(f.path()).unwrap(), 2000);
    }

    /// Corrupt one payload byte of block `block` in a serialized v2 file.
    fn flip_payload_byte(bytes: &mut [u8], block: usize) -> (u64, u64, u32) {
        let mut off = 13; // magic + version + count
        for index in 0..=block {
            let payload_len =
                u32::from_le_bytes([bytes[off], bytes[off + 1], bytes[off + 2], bytes[off + 3]])
                    as usize;
            let tx_count = u32::from_le_bytes([
                bytes[off + 4],
                bytes[off + 5],
                bytes[off + 6],
                bytes[off + 7],
            ]);
            let first_tid = u64::from_le_bytes(bytes[off + 8..off + 16].try_into().unwrap());
            let last_tid = u64::from_le_bytes(bytes[off + 16..off + 24].try_into().unwrap());
            if index == block {
                bytes[off + BLOCK_HEADER_LEN] ^= 0x40;
                return (first_tid, last_tid, tx_count);
            }
            off += BLOCK_HEADER_LEN + payload_len;
        }
        (0, 0, 0)
    }

    #[test]
    fn strict_mode_fails_closed_on_a_flipped_bit() {
        let db = multi_block_db(1500);
        let mut buf = Vec::new();
        write_db(&db, &mut buf).unwrap();
        let (first, last, txs) = flip_payload_byte(&mut buf, 1);
        let f = TempFile::new("corrupt.nadb");
        std::fs::write(f.path(), &buf).unwrap();

        let err = load(f.path()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let corrupt = err
            .get_ref()
            .and_then(|r| r.downcast_ref::<CorruptBlock>())
            .expect("strict failure carries a typed CorruptBlock");
        assert_eq!(corrupt.index, 1);
        assert_eq!(corrupt.first_tid, first);
        assert_eq!(corrupt.last_tid, last);
        assert_eq!(corrupt.tx_count, txs);
        assert!(!corrupt.header_corrupt);

        // The streaming source fails the same way on every pass.
        let src = FileSource::open(f.path()).unwrap();
        assert!(src.pass(&mut |_| {}).is_err());
    }

    #[test]
    fn salvage_skips_the_bad_block_and_names_the_lost_tids() {
        let db = multi_block_db(1500);
        let mut buf = Vec::new();
        write_db(&db, &mut buf).unwrap();
        let (first, last, txs) = flip_payload_byte(&mut buf, 1);
        let f = TempFile::new("salvage.nadb");
        std::fs::write(f.path(), &buf).unwrap();

        let (recovered, report) = load_salvage(f.path()).unwrap();
        assert_eq!(report.lost_blocks.len(), 1);
        let lost = &report.lost_blocks[0];
        assert_eq!((lost.first_tid, lost.last_tid), (first, last));
        assert_eq!(lost.tx_count, txs);
        assert_eq!(report.lost_transactions(), u64::from(txs));
        assert_eq!(report.recovered, 1500 - u64::from(txs));
        assert_eq!(recovered.len() as u64, report.recovered);
        // The recovered set is exactly the original minus the lost range.
        for t in recovered.iter() {
            assert!(t.tid() < first || t.tid() > last);
        }
        let shown = report.to_string();
        assert!(shown.contains(&format!("TIDs {first}..={last}")));

        // An intact v2 file salvages cleanly.
        let f2 = TempFile::new("clean.nadb");
        save(&db, f2.path()).unwrap();
        let (all, clean) = load_salvage(f2.path()).unwrap();
        assert!(clean.is_clean());
        assert_eq!(all.len(), 1500);
    }

    #[test]
    fn salvage_refuses_v1() {
        let f = TempFile::new("v1-salvage.nadb");
        save_v1(&sample_db(), f.path()).unwrap();
        let err = load_salvage(f.path()).unwrap_err();
        assert!(err.to_string().contains("v1"));
    }

    #[test]
    fn truncated_v2_is_an_error_strict_and_a_tail_loss_in_salvage() {
        let db = multi_block_db(1200);
        let mut buf = Vec::new();
        write_db(&db, &mut buf).unwrap();
        buf.truncate(buf.len() - 100);
        let f = TempFile::new("trunc.nadb");
        std::fs::write(f.path(), &buf).unwrap();

        assert!(load(f.path()).is_err());
        let (recovered, report) = load_salvage(f.path()).unwrap();
        assert!(!report.is_clean());
        assert_eq!(
            recovered.len() as u64 + report.lost_transactions(),
            1200,
            "every transaction is either recovered or accounted lost"
        );
    }

    #[test]
    fn bad_magic_is_rejected() {
        let buf = b"XXXX\x01\x00\x00\x00\x00\x00\x00\x00\x00".to_vec();
        assert!(read_header(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn bad_version_is_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.push(9);
        buf.extend_from_slice(&0u64.to_le_bytes());
        assert!(read_header(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn truncated_v1_body_is_an_error() {
        let db = sample_db();
        let mut buf = Vec::new();
        write_db_v1(&db, &mut buf).unwrap();
        buf.truncate(buf.len() - 1);
        let mut r = buf.as_slice();
        let (version, count) = read_header(&mut r).unwrap();
        assert_eq!(version, VERSION_V1);
        assert!(scan_body(&mut r, count, &mut |_| {}).is_err());
    }

    #[test]
    fn salvage_pass_streams_what_load_salvage_materializes() {
        let db = multi_block_db(1500);
        let mut buf = Vec::new();
        write_db(&db, &mut buf).unwrap();
        flip_payload_byte(&mut buf, 1);
        let f = TempFile::new("salvage-pass.nadb");
        std::fs::write(f.path(), &buf).unwrap();

        let (loaded, load_report) = load_salvage(f.path()).unwrap();
        let mut streamed: Vec<(u64, Vec<ItemId>)> = Vec::new();
        let stream_report = salvage_pass(f.path(), &mut |t| {
            streamed.push((t.tid(), t.items().to_vec()));
        })
        .unwrap();
        assert_eq!(stream_report, load_report);
        assert_eq!(streamed.len() as u64, load_report.recovered);
        for (got, want) in streamed.iter().zip(loaded.iter()) {
            assert_eq!(got.0, want.tid());
            assert_eq!(got.1, want.items());
        }
        // Deterministic across passes: same delivery, same report.
        let again = salvage_pass(f.path(), &mut |_| {}).unwrap();
        assert_eq!(again, stream_report);
    }

    #[test]
    fn salvage_pass_refuses_v1() {
        let f = TempFile::new("v1-salvage-pass.nadb");
        save_v1(&sample_db(), f.path()).unwrap();
        let err = salvage_pass(f.path(), &mut |_| {}).unwrap_err();
        assert!(err.to_string().contains("v1"));
    }

    #[test]
    fn merged_reports_add_up() {
        let mut a = SalvageReport {
            recovered: 100,
            lost_blocks: vec![CorruptBlock {
                index: 0,
                first_tid: 0,
                last_tid: 9,
                tx_count: 10,
                header_corrupt: false,
            }],
            lost_tail: 3,
        };
        let b = SalvageReport {
            recovered: 50,
            lost_blocks: vec![CorruptBlock {
                index: 2,
                first_tid: 40,
                last_tid: 49,
                tx_count: 10,
                header_corrupt: false,
            }],
            lost_tail: 0,
        };
        a.merge(b);
        assert_eq!(a.recovered, 150);
        assert_eq!(a.lost_tail, 3);
        assert_eq!(a.lost_blocks.len(), 2);
        assert_eq!(a.lost_transactions(), 23);
        assert!(!a.is_clean());
    }

    #[test]
    fn display_groups_adjacent_lost_blocks_into_one_range() {
        // Blocks 3..=6 are one contiguous loss; block 9 stands alone.
        let mk = |index: u64, first: u64, last: u64| CorruptBlock {
            index,
            first_tid: first,
            last_tid: last,
            tx_count: (last - first + 1) as u32,
            header_corrupt: false,
        };
        let report = SalvageReport {
            recovered: 500,
            lost_blocks: vec![
                mk(3, 30, 39),
                mk(4, 40, 49),
                mk(5, 50, 59),
                mk(6, 60, 69),
                mk(9, 90, 99),
            ],
            lost_tail: 0,
        };
        let shown = report.to_string();
        assert!(
            shown.contains("blocks 3..=6: lost 40 transactions, TIDs 30..=69"),
            "{shown}"
        );
        assert!(
            shown.contains("block 9: lost 10 transactions, TIDs 90..=99"),
            "{shown}"
        );
        // Exactly two loss lines — not five.
        assert_eq!(
            shown.lines().filter(|l| l.contains("lost")).count(),
            3, // headline + 2 grouped lines
            "{shown}"
        );

        // A gap in TIDs (even with adjacent indexes) breaks the group and
        // keeps the sparse marker honest.
        let sparse = SalvageReport {
            recovered: 10,
            lost_blocks: vec![mk(0, 0, 9), mk(1, 20, 29)],
            lost_tail: 0,
        };
        let shown = sparse.to_string();
        assert!(shown.contains("block 0:"), "{shown}");
        assert!(shown.contains("block 1:"), "{shown}");
    }

    #[test]
    fn header_corruption_fails_even_salvage_framing() {
        let db = multi_block_db(1500);
        let mut buf = Vec::new();
        write_db(&db, &mut buf).unwrap();
        // Flip a byte inside block 1's *header*.
        let block0_payload = u32::from_le_bytes([buf[13], buf[14], buf[15], buf[16]]) as usize;
        let block1_off = 13 + BLOCK_HEADER_LEN + block0_payload;
        buf[block1_off + 9] ^= 0x01; // inside first_tid
        let f = TempFile::new("hdr.nadb");
        std::fs::write(f.path(), &buf).unwrap();

        let err = load(f.path()).unwrap_err();
        let corrupt = err
            .get_ref()
            .and_then(|r| r.downcast_ref::<CorruptBlock>())
            .expect("typed corrupt-block error");
        assert!(corrupt.header_corrupt);

        // Salvage keeps block 0 and accounts everything after as tail loss.
        let (recovered, report) = load_salvage(f.path()).unwrap();
        assert_eq!(recovered.len(), 512);
        assert_eq!(report.lost_tail, 1500 - 512);
    }
}
