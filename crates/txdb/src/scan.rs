use crate::transaction::Transaction;
use std::cell::Cell;
use std::io;

/// Anything the mining algorithms can make repeated *passes* over.
///
/// The paper's complexity analysis is stated in database passes (Naive makes
/// `2n`, Improved `n + 1`); every algorithm in this workspace is therefore
/// written against this trait rather than against an in-memory vector, so the
/// same code runs over [`crate::TransactionDb`], a streamed
/// [`crate::binfmt::FileSource`], or a [`PassCounter`] that audits the pass
/// count.
pub trait TransactionSource {
    /// Perform one full pass, invoking `f` once per transaction, in a stable
    /// order.
    fn pass(&self, f: &mut dyn FnMut(Transaction<'_>)) -> io::Result<()>;

    /// Number of transactions, when known without a pass.
    fn len_hint(&self) -> Option<u64> {
        None
    }

    /// Count transactions, using [`Self::len_hint`] when available.
    fn count_transactions(&self) -> io::Result<u64> {
        if let Some(n) = self.len_hint() {
            return Ok(n);
        }
        let mut n = 0u64;
        self.pass(&mut |_| n += 1)?;
        Ok(n)
    }

    /// The in-memory database behind this source, when it *is* one.
    /// Algorithms with a partition-based degraded mode (which needs random
    /// access) use this to decide whether that fallback is available.
    /// Wrappers that change pass semantics (fault injection, pass
    /// counting) deliberately return `None` — unwrapping them would bypass
    /// what they instrument.
    fn as_db(&self) -> Option<&crate::TransactionDb> {
        None
    }

    /// Per-shard random access behind this source, when it is sharded
    /// (see [`crate::shard::ShardedSource`]). The memory-bounded
    /// partition fallback uses this to mine one shard at a time instead
    /// of giving up on a streamed source. Wrappers that change pass
    /// semantics deliberately return `None`, like [`Self::as_db`].
    fn as_shards(&self) -> Option<&dyn crate::shard::ShardAccess> {
        None
    }

    /// A stable digest of the source's *content* identity, when it has
    /// one (e.g. the shard manifest's CRCs). Checkpoint fingerprints mix
    /// this in so a resume survives cosmetic changes (same shards,
    /// different manifest order) but never content drift. `None` means
    /// "no digest" — the fingerprint falls back to the transaction count
    /// alone.
    fn content_digest(&self) -> Option<u64> {
        None
    }

    /// Display paths of shards this source had to quarantine (empty for
    /// non-sharded or fully healthy sources). A successful mine over a
    /// source with quarantined shards is *degraded*: exact over the
    /// transactions delivered, silent about the ones quarantined.
    fn quarantined_shards(&self) -> Vec<String> {
        Vec::new()
    }
}

impl<T: TransactionSource + ?Sized> TransactionSource for &T {
    fn pass(&self, f: &mut dyn FnMut(Transaction<'_>)) -> io::Result<()> {
        (**self).pass(f)
    }

    fn len_hint(&self) -> Option<u64> {
        (**self).len_hint()
    }

    fn as_db(&self) -> Option<&crate::TransactionDb> {
        (**self).as_db()
    }

    fn as_shards(&self) -> Option<&dyn crate::shard::ShardAccess> {
        (**self).as_shards()
    }

    fn content_digest(&self) -> Option<u64> {
        (**self).content_digest()
    }

    fn quarantined_shards(&self) -> Vec<String> {
        (**self).quarantined_shards()
    }
}

/// Wraps a [`TransactionSource`] and counts how many passes are made.
///
/// Tests use this to pin the paper's pass-count claims: the naive negative
/// miner performs `2n` passes, the improved one `n + 1` (§2.2), plus extra
/// passes only under the §2.5 memory-bounded fallback.
pub struct PassCounter<S> {
    inner: S,
    passes: Cell<u64>,
}

impl<S: TransactionSource> PassCounter<S> {
    /// Wrap `inner` with a zeroed pass counter.
    pub fn new(inner: S) -> Self {
        Self {
            inner,
            passes: Cell::new(0),
        }
    }

    /// Passes made so far.
    pub fn passes(&self) -> u64 {
        self.passes.get()
    }

    /// Reset the counter to zero.
    pub fn reset(&self) {
        self.passes.set(0);
    }

    /// The wrapped source.
    pub fn inner(&self) -> &S {
        &self.inner
    }
}

impl<S: TransactionSource> TransactionSource for PassCounter<S> {
    fn pass(&self, f: &mut dyn FnMut(Transaction<'_>)) -> io::Result<()> {
        self.passes.set(self.passes.get() + 1);
        self.inner.pass(f)
    }

    fn len_hint(&self) -> Option<u64> {
        self.inner.len_hint()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TransactionDbBuilder;
    use negassoc_taxonomy::ItemId;

    #[test]
    fn pass_counter_counts() {
        let mut b = TransactionDbBuilder::new();
        b.add([ItemId(1)]);
        let pc = PassCounter::new(b.build());
        assert_eq!(pc.passes(), 0);
        pc.pass(&mut |_| {}).unwrap();
        pc.pass(&mut |_| {}).unwrap();
        assert_eq!(pc.passes(), 2);
        pc.reset();
        assert_eq!(pc.passes(), 0);
        assert_eq!(pc.len_hint(), Some(1));
        assert_eq!(pc.inner().len(), 1);
    }

    #[test]
    fn count_transactions_uses_hint() {
        let mut b = TransactionDbBuilder::new();
        b.add([ItemId(1)]);
        b.add([ItemId(2)]);
        let pc = PassCounter::new(b.build());
        assert_eq!(pc.count_transactions().unwrap(), 2);
        // The hint avoided a pass.
        assert_eq!(pc.passes(), 0);
    }

    /// A hint-less source to exercise the counting fallback.
    struct NoHint(crate::TransactionDb);

    impl TransactionSource for NoHint {
        fn pass(&self, f: &mut dyn FnMut(Transaction<'_>)) -> io::Result<()> {
            self.0.pass(f)
        }
    }

    #[test]
    fn count_transactions_falls_back_to_a_pass() {
        let mut b = TransactionDbBuilder::new();
        b.add([ItemId(1)]);
        b.add([ItemId(2)]);
        b.add([ItemId(3)]);
        let src = NoHint(b.build());
        assert_eq!(src.len_hint(), None);
        assert_eq!(src.count_transactions().unwrap(), 3);
    }

    #[test]
    fn reference_forwarding() {
        let mut b = TransactionDbBuilder::new();
        b.add([ItemId(1)]);
        let db = b.build();
        let r: &dyn TransactionSource = &db;
        let rr = &r;
        assert_eq!(rr.len_hint(), Some(1));
        let mut n = 0;
        rr.pass(&mut |_| n += 1).unwrap();
        assert_eq!(n, 1);
    }
}
