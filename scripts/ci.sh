#!/usr/bin/env bash
# The full verification ladder, cheapest first. Referenced from
# ROADMAP.md as the tier-1 gate; any step failing fails the run.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo build --release"
cargo build --release

# Lints run before the test suites: a lint violation is cheaper to
# report than a full test run, and analyze is sub-second when the
# incremental cache is warm.
echo "==> xtask analyze --deny-all"
cargo run -q --release -p xtask -- analyze --deny-all

echo "==> lint baseline stays empty"
# The grandfathered-findings ledger was burned down to nothing; new
# findings must be fixed (or carry an inline allow with a reason), never
# re-grandfathered.
if grep -qE '^L[0-9]{3} ' lint-baseline.txt; then
  echo "ci: lint-baseline.txt has grandfathered findings; fix them instead" >&2
  exit 1
fi

echo "==> xtask analyze --json | xtask validate-json (report round-trip)"
SMOKE="$(mktemp -d)"
trap 'rm -rf "$SMOKE"' EXIT
cargo run -q --release -p xtask -- analyze --json > "$SMOKE/analyze.json"
cargo run -q --release -p xtask -- validate-json "$SMOKE/analyze.json"

echo "==> cargo test -q"
cargo test -q

echo "==> fault-injection smoke (checkpoint/resume round trip)"
NEGRULES=./target/release/negrules
"$NEGRULES" generate --data "$SMOKE/d.nadb" --taxonomy "$SMOKE/t.txt" \
  --transactions 300 --seed 11 > /dev/null
"$NEGRULES" negatives --data "$SMOKE/d.nadb" --taxonomy "$SMOKE/t.txt" \
  --min-support 0.05 --max-size 2 --out "$SMOKE/clean.csv" > /dev/null
# A run with an injected permanent fault must fail but leave checkpoints.
if "$NEGRULES" negatives --data "$SMOKE/d.nadb" --taxonomy "$SMOKE/t.txt" \
  --min-support 0.05 --max-size 2 --checkpoint-dir "$SMOKE/ckpt" \
  --inject-fail-pass 2 > /dev/null 2>&1; then
  echo "smoke: injected run unexpectedly succeeded" >&2
  exit 1
fi
[ -n "$(ls -A "$SMOKE/ckpt")" ] || { echo "smoke: no checkpoints written" >&2; exit 1; }
# Resuming from those checkpoints must reproduce the clean output exactly.
"$NEGRULES" negatives --data "$SMOKE/d.nadb" --taxonomy "$SMOKE/t.txt" \
  --min-support 0.05 --max-size 2 --checkpoint-dir "$SMOKE/ckpt" \
  --out "$SMOKE/resumed.csv" > /dev/null
diff "$SMOKE/clean.csv" "$SMOKE/resumed.csv"
echo "smoke: resumed output byte-identical to the clean run"

echo "==> chaos soak (seeded cancel/fault/thread schedules, bitwise resume)"
cargo test -q --release -p negassoc --test chaos_soak

echo "==> interrupt smoke (exit-code contract: deadline cancel, resume)"
# An expired deadline must exit 3 (interrupted) — not 0, not 1 — and with
# --checkpoint-dir the re-run must finish with output identical to clean.
set +e
"$NEGRULES" negatives --data "$SMOKE/d.nadb" --taxonomy "$SMOKE/t.txt" \
  --min-support 0.05 --max-size 2 --checkpoint-dir "$SMOKE/ckpt-int" \
  --deadline 0 > /dev/null 2> "$SMOKE/int.err"
rc=$?
set -e
if [ "$rc" -ne 3 ]; then
  echo "smoke: --deadline 0 exited $rc, want 3" >&2
  cat "$SMOKE/int.err" >&2
  exit 1
fi
grep -q "interrupted" "$SMOKE/int.err" || { echo "smoke: missing interrupt notice" >&2; exit 1; }
"$NEGRULES" negatives --data "$SMOKE/d.nadb" --taxonomy "$SMOKE/t.txt" \
  --min-support 0.05 --max-size 2 --checkpoint-dir "$SMOKE/ckpt-int" \
  --out "$SMOKE/after-interrupt.csv" > /dev/null
diff "$SMOKE/clean.csv" "$SMOKE/after-interrupt.csv"
echo "smoke: interrupted run exited 3, resume byte-identical to the clean run"

echo "==> multi-thread smoke (worker-pool counting, crash + threaded resume)"
# Determinism contract: worker threads change wall time, never output.
"$NEGRULES" negatives --data "$SMOKE/d.nadb" --taxonomy "$SMOKE/t.txt" \
  --min-support 0.05 --max-size 2 --threads 4 --pass-stats \
  --out "$SMOKE/threads4.csv" > /dev/null
diff "$SMOKE/clean.csv" "$SMOKE/threads4.csv"
# Crash a threaded run mid-pass, then resume it threaded: still identical.
if "$NEGRULES" negatives --data "$SMOKE/d.nadb" --taxonomy "$SMOKE/t.txt" \
  --min-support 0.05 --max-size 2 --threads 4 --checkpoint-dir "$SMOKE/ckpt-mt" \
  --inject-fail-pass 2 > /dev/null 2>&1; then
  echo "smoke: threaded injected run unexpectedly succeeded" >&2
  exit 1
fi
[ -n "$(ls -A "$SMOKE/ckpt-mt")" ] || { echo "smoke: no threaded checkpoints" >&2; exit 1; }
"$NEGRULES" negatives --data "$SMOKE/d.nadb" --taxonomy "$SMOKE/t.txt" \
  --min-support 0.05 --max-size 2 --threads 4 --checkpoint-dir "$SMOKE/ckpt-mt" \
  --out "$SMOKE/threads4-resumed.csv" > /dev/null
diff "$SMOKE/clean.csv" "$SMOKE/threads4-resumed.csv"
echo "smoke: threaded runs byte-identical to the sequential run"

echo "==> observability smoke (traced mine, JSON-lines validation)"
# A traced run must emit JSON lines the workspace's own strict parser
# accepts, and --metrics must surface the counter table.
"$NEGRULES" negatives --data "$SMOKE/d.nadb" --taxonomy "$SMOKE/t.txt" \
  --min-support 0.05 --max-size 2 --threads 2 \
  --trace "$SMOKE/trace.jsonl" --metrics > "$SMOKE/obs.out"
[ -s "$SMOKE/trace.jsonl" ] || { echo "smoke: empty trace" >&2; exit 1; }
cargo run -q --release -p xtask -- validate-json "$SMOKE/trace.jsonl" --lines
grep -q '"event":"run_end"' "$SMOKE/trace.jsonl" \
  || { echo "smoke: trace missing run_end" >&2; exit 1; }
grep -q "passes.completed" "$SMOKE/obs.out" \
  || { echo "smoke: --metrics table missing" >&2; exit 1; }
echo "smoke: trace is valid JSON lines, metrics table present"

echo "==> sharded smoke (manifest mining, shard quarantine, degraded exit 0)"
# An all-healthy manifest must reproduce the unsharded output bytewise.
"$NEGRULES" generate --data "$SMOKE/sh.nadb" --taxonomy "$SMOKE/sh-tax.txt" \
  --transactions 600 --seed 7 --shards 3 > /dev/null
"$NEGRULES" negatives --data "$SMOKE/sh.nadb" --taxonomy "$SMOKE/sh-tax.txt" \
  --min-support 0.05 --max-size 2 --out "$SMOKE/sh-whole.csv" > /dev/null
"$NEGRULES" negatives --manifest "$SMOKE/sh.manifest" --taxonomy "$SMOKE/sh-tax.txt" \
  --min-support 0.05 --max-size 2 --out "$SMOKE/sh-manifest.csv" > /dev/null
diff "$SMOKE/sh-whole.csv" "$SMOKE/sh-manifest.csv"
# Destroy one shard's header. Strict mode must refuse and name the shard;
# --salvage must quarantine it, mine the rest, and still exit 0 with the
# degraded completeness stated.
printf 'XXXX' | dd of="$SMOKE/sh-shard-001.nadb" bs=1 seek=0 conv=notrunc 2> /dev/null
set +e
"$NEGRULES" negatives --manifest "$SMOKE/sh.manifest" --taxonomy "$SMOKE/sh-tax.txt" \
  --min-support 0.05 --max-size 2 > /dev/null 2> "$SMOKE/sh-strict.err"
rc=$?
set -e
if [ "$rc" -ne 1 ]; then
  echo "smoke: strict manifest load of a dead shard exited $rc, want 1" >&2
  exit 1
fi
grep -q "sh-shard-001.nadb" "$SMOKE/sh-strict.err" \
  || { echo "smoke: strict error does not name the offending shard" >&2; exit 1; }
"$NEGRULES" negatives --manifest "$SMOKE/sh.manifest" --taxonomy "$SMOKE/sh-tax.txt" \
  --min-support 0.05 --max-size 2 --salvage \
  > "$SMOKE/sh-degraded.out" 2> "$SMOKE/sh-degraded.err"
grep -q "quarantine:" "$SMOKE/sh-degraded.err" \
  || { echo "smoke: degraded run missing quarantine report" >&2; exit 1; }
grep -q "completeness: complete except 1 quarantined shard" "$SMOKE/sh-degraded.out" \
  || { echo "smoke: degraded run missing completeness line" >&2; exit 1; }
echo "smoke: sharded manifest mined; dead shard quarantined with exit 0"

echo "==> backend matrix smoke (flat/hashtree/bitmap byte-identical output)"
# Counting strategy must never move the answer: every --backend choice,
# sequential and threaded, reproduces the clean run bytewise.
for be in flat hashtree bitmap; do
  "$NEGRULES" negatives --data "$SMOKE/d.nadb" --taxonomy "$SMOKE/t.txt" \
    --min-support 0.05 --max-size 2 --backend "$be" \
    --out "$SMOKE/backend-$be.csv" > /dev/null
  diff "$SMOKE/clean.csv" "$SMOKE/backend-$be.csv"
done
"$NEGRULES" negatives --data "$SMOKE/d.nadb" --taxonomy "$SMOKE/t.txt" \
  --min-support 0.05 --max-size 2 --backend bitmap --threads 4 \
  --out "$SMOKE/backend-bitmap-t4.csv" > /dev/null
diff "$SMOKE/clean.csv" "$SMOKE/backend-bitmap-t4.csv"
# And through a shard manifest (a fresh one: the quarantine stage above
# deliberately corrupted sh-shard-001).
"$NEGRULES" generate --data "$SMOKE/bm.nadb" --taxonomy "$SMOKE/bm-tax.txt" \
  --transactions 600 --seed 7 --shards 3 > /dev/null
"$NEGRULES" negatives --manifest "$SMOKE/bm.manifest" --taxonomy "$SMOKE/bm-tax.txt" \
  --min-support 0.05 --max-size 2 --backend bitmap \
  --out "$SMOKE/backend-bitmap-sharded.csv" > /dev/null
diff "$SMOKE/sh-whole.csv" "$SMOKE/backend-bitmap-sharded.csv"
echo "smoke: all backends byte-identical, incl. threaded and sharded bitmap"

echo "==> serve smoke (snapshot export, server vs offline oracle, SIGINT drain)"
# Mine a small dataset into a versioned snapshot, serve it, answer a
# scripted basket batch over TCP, and diff the served bytes against the
# offline full-scan oracle — any antecedent-index bug fails the diff. A
# mid-batch hot-swap and a SIGINT drain (clean exit 0) ride along.
"$NEGRULES" export-snapshot --data "$SMOKE/d.nadb" --taxonomy "$SMOKE/t.txt" \
  --out "$SMOKE/rules-v1.nars" --min-support 0.05 --min-ri 0.3 \
  --snapshot-version 1 > /dev/null
"$NEGRULES" export-snapshot --data "$SMOKE/d.nadb" --taxonomy "$SMOKE/t.txt" \
  --out "$SMOKE/rules-v2.nars" --min-support 0.05 --min-ri 0.5 \
  --snapshot-version 2 > /dev/null
# Basket batch: every taxonomy root and leaf as a singleton, some pairs,
# plus malformed lines (unknown item, empty) that must render as error
# bodies identically on both paths.
awk -F'\t' '{ print $1 } NR % 3 == 0 && prev != "" { print prev ", " $1 } { prev = $1 }' \
  "$SMOKE/t.txt" > "$SMOKE/baskets.txt"
printf 'no-such-item\n   \n' >> "$SMOKE/baskets.txt"
"$NEGRULES" match --snapshot "$SMOKE/rules-v1.nars" --taxonomy "$SMOKE/t.txt" \
  --baskets "$SMOKE/baskets.txt" --out "$SMOKE/oracle-v1.txt" > /dev/null
"$NEGRULES" match --snapshot "$SMOKE/rules-v2.nars" --taxonomy "$SMOKE/t.txt" \
  --baskets "$SMOKE/baskets.txt" --out "$SMOKE/oracle-v2.txt" > /dev/null
"$NEGRULES" serve --snapshot "$SMOKE/rules-v1.nars" --taxonomy "$SMOKE/t.txt" \
  --workers 2 > "$SMOKE/serve.out" 2>&1 &
SERVE_PID=$!
ADDR=""
for _ in $(seq 1 100); do
  ADDR="$(sed -n 's/^listening on \([0-9.:]*\) .*/\1/p' "$SMOKE/serve.out")"
  [ -n "$ADDR" ] && break
  sleep 0.1
done
[ -n "$ADDR" ] || { echo "smoke: server never became ready" >&2; cat "$SMOKE/serve.out" >&2; exit 1; }
"$NEGRULES" query --addr "$ADDR" --ping | grep -q "pong snapshot 1" \
  || { echo "smoke: bad ping" >&2; exit 1; }
"$NEGRULES" query --addr "$ADDR" --baskets "$SMOKE/baskets.txt" \
  --out "$SMOKE/served-v1.txt" > /dev/null
diff "$SMOKE/oracle-v1.txt" "$SMOKE/served-v1.txt"
# Hot-swap to snapshot v2 over the wire; served answers must now match
# the v2 oracle byte-for-byte.
"$NEGRULES" query --addr "$ADDR" --swap "$SMOKE/rules-v2.nars" \
  | grep -q "swapped snapshot version 1 -> 2" \
  || { echo "smoke: hot swap failed" >&2; exit 1; }
"$NEGRULES" query --addr "$ADDR" --baskets "$SMOKE/baskets.txt" \
  --out "$SMOKE/served-v2.txt" > /dev/null
diff "$SMOKE/oracle-v2.txt" "$SMOKE/served-v2.txt"
# SIGINT is the server's normal shutdown: graceful drain, exit 0.
kill -INT "$SERVE_PID"
set +e
wait "$SERVE_PID"
rc=$?
set -e
if [ "$rc" -ne 0 ]; then
  echo "smoke: server exited $rc on SIGINT, want 0" >&2
  cat "$SMOKE/serve.out" >&2
  exit 1
fi
grep -q "served .* requests" "$SMOKE/serve.out" \
  || { echo "smoke: server drain stats missing" >&2; exit 1; }
# The committed serving-bench artifact must stay valid JSON.
cargo run -q --release -p xtask -- validate-json BENCH_serve.json
echo "smoke: served answers byte-identical to the oracle; SIGINT drained exit 0"

echo "ci: all checks passed"
