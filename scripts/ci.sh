#!/usr/bin/env bash
# The full verification ladder, cheapest first. Referenced from
# ROADMAP.md as the tier-1 gate; any step failing fails the run.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> xtask analyze --deny-all"
cargo run -q --release -p xtask -- analyze --deny-all

echo "ci: all checks passed"
