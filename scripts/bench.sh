#!/usr/bin/env bash
# Benchmark stages that record the perf trajectory as BENCH_*.json
# artifacts in the repo root. Heavier than ci.sh; run on demand.
#
#   scripts/bench.sh            # default scale (4,000 transactions)
#   BENCH_SCALE=20000 scripts/bench.sh
set -euo pipefail
cd "$(dirname "$0")/.."

SCALE="${BENCH_SCALE:-4000}"

echo "==> cargo build --release (bench harness)"
cargo build -q --release -p negassoc-bench

echo "==> counting backends: flat vs hashtree vs bitmap x 1/2/4 threads (scale $SCALE)"
./target/release/paper counting --scale "$SCALE"

echo "==> BENCH_counting.json"
# The artifact is the record; surface the headline so the run log has it
# too. Speedup > 1 needs real cores: on a single-CPU machine the worker
# pool can only add overhead, and the JSON will honestly say so.
grep -E '"available_parallelism"|"transactions"|"speedup_vs_sequential"|"l2_speedup_bitmap_vs_flat"|"bitmap_speedup_x4"' BENCH_counting.json

# The artifact must carry the fixed 100,000-transaction scale alongside
# the primary one: behavior past toy sizes is on the record, always.
grep -q '"transactions": 100000' BENCH_counting.json \
  || { echo "bench: missing the 100,000-transaction scale" >&2; exit 1; }

# The vertical-counting bar: on the primary scale (first in the
# document), the sequential L2 pass — the dominant pass, largest
# candidate set — must run >= 3x faster under the TID-bitmap backend
# than under the flat subset-hash-map baseline.
l2="$(sed -n 's/.*"l2_speedup_bitmap_vs_flat": \([0-9.]*\).*/\1/p' BENCH_counting.json | head -1)"
[ -n "$l2" ] || { echo "bench: no l2_speedup_bitmap_vs_flat headline" >&2; exit 1; }
awk -v s="$l2" 'BEGIN { exit !(s >= 3.0) }' \
  || { echo "bench: bitmap L2 speedup ${l2}x < 3x bar" >&2; exit 1; }
echo "bench: bitmap L2 speedup ${l2}x (>= 3x bar)"

# The thread-scaling bar: with the bitmap backend, 4 workers must beat
# the sequential run — but only on a machine that has real cores to
# scale onto. On a single-CPU box the pool can only add overhead, so
# the gate is explicitly skipped (the JSON still records the honest
# number).
cores="$(sed -n 's/.*"available_parallelism": \([0-9]*\).*/\1/p' BENCH_counting.json | head -1)"
x4="$(sed -n 's/.*"bitmap_speedup_x4": \([0-9.]*\).*/\1/p' BENCH_counting.json | head -1)"
if [ "${cores:-1}" -ge 2 ]; then
  [ -n "$x4" ] || { echo "bench: no bitmap_speedup_x4 headline" >&2; exit 1; }
  awk -v s="$x4" 'BEGIN { exit !(s > 1.0) }' \
    || { echo "bench: bitmap x4 speedup ${x4} <= 1 on a ${cores}-core machine" >&2; exit 1; }
  echo "bench: bitmap x4 speedup ${x4} (> 1 bar, ${cores} cores)"
else
  echo "bench: x4 > 1 gate skipped (single-CPU machine; recorded ${x4:-null})"
fi

echo "==> sharded counting: bounded-memory gate"
# The sharded rows mine the same dataset through a 1/4/16-shard manifest
# (one shard resident at a time). The bounded-memory bar: the peak
# candidate set per pass must be *identical* across shard counts —
# candidate memory is a function of the data, never of how it is sharded
# — while the largest resident shard must strictly shrink.
grep '"shards"' BENCH_counting.json
sed -n 's/.*"max_pass_candidates": \([0-9]*\).*/\1/p' BENCH_counting.json \
  | awk 'NR == 1 { first = $1 } $1 != first { exit 1 }' \
  || { echo "bench: peak candidate memory varies with shard count" >&2; exit 1; }
sed -n 's/.*"largest_shard": \([0-9]*\).*/\1/p' BENCH_counting.json \
  | awk 'NR > 1 && $1 >= prev { exit 1 } { prev = $1 }' \
  || { echo "bench: resident shard size did not shrink with shard count" >&2; exit 1; }
echo "bench: peak candidate memory independent of shard count"

echo "==> run control plane: cancel-token overhead (scale $SCALE)"
./target/release/paper ctrl --scale "$SCALE"

echo "==> BENCH_ctrl.json"
# The control plane's acceptance bar: armed token checks must cost < 2%
# median wall time over the token-free baseline.
grep -E '"median_baseline_s"|"median_controlled_s"|"overhead_pct"' BENCH_ctrl.json
pct="$(sed -n 's/.*"overhead_pct": \(-\{0,1\}[0-9.]*\).*/\1/p' BENCH_ctrl.json)"
awk -v p="$pct" 'BEGIN { exit !(p < 2.0) }' \
  || { echo "bench: token-check overhead ${pct}% >= 2% bar" >&2; exit 1; }
echo "bench: control-plane overhead ${pct}% (< 2% bar)"

echo "==> observability: no-op-sink overhead (scale $SCALE)"
./target/release/paper obs --scale "$SCALE"

echo "==> BENCH_obs.json"
# The observability acceptance bar: emission points with a no-op sink
# attached must cost < 2% median wall time over an unobserved run.
grep -E '"median_baseline_s"|"median_observed_s"|"overhead_pct"' BENCH_obs.json
opct="$(sed -n 's/.*"overhead_pct": \(-\{0,1\}[0-9.]*\).*/\1/p' BENCH_obs.json)"
awk -v p="$opct" 'BEGIN { exit !(p < 2.0) }' \
  || { echo "bench: no-op-sink overhead ${opct}% >= 2% bar" >&2; exit 1; }
echo "bench: observability overhead ${opct}% (< 2% bar)"

echo "==> rule serving: basket-match throughput (scale $SCALE)"
./target/release/paper serve --scale "$SCALE"

echo "==> BENCH_serve.json"
cargo run -q --release -p xtask -- validate-json BENCH_serve.json
grep -E '"queries_per_sec"|"oracle_agreement"|"hot_swap_survived"' BENCH_serve.json
# The serving layer's correctness contracts are recorded in the artifact
# and enforced here: the indexed matcher must agree with the full-scan
# oracle on every basket, and the mid-batch hot swap must not tear.
grep -q '"oracle_agreement": true' BENCH_serve.json \
  || { echo "bench: indexed matcher diverged from the oracle" >&2; exit 1; }
grep -q '"hot_swap_survived": true' BENCH_serve.json \
  || { echo "bench: hot swap tore a response mid-batch" >&2; exit 1; }
# The throughput bar: >= 10,000 queries/sec on the 4,000-transaction
# snapshot (interactive latency with plenty of headroom).
qps="$(sed -n 's/.*"queries_per_sec": \([0-9.]*\).*/\1/p' BENCH_serve.json)"
[ -n "$qps" ] || { echo "bench: no queries_per_sec headline" >&2; exit 1; }
awk -v q="$qps" 'BEGIN { exit !(q >= 10000.0) }' \
  || { echo "bench: serving throughput ${qps} queries/sec < 10k bar" >&2; exit 1; }
echo "bench: serving throughput ${qps} queries/sec (>= 10k bar)"

echo "bench: artifacts written"
